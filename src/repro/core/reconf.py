"""Step 7 — reconfigurations scheduling (Section V-G).

A reconfiguration task is created between every pair of subsequent
tasks of a region (the region's first task is configured by the initial
full bitstream, Eq. 6).  All reconfigurations share the single
reconfiguration controller, so they must be serialized.

The implementation models reconfigurations as extra nodes of the
precedence graph:

* ``t_in -> rc`` realises ``T_MIN_rc = T_END_{t_in}`` (Eq. 10),
* ``rc -> t_out`` forces the outgoing task to wait for its bitstream,
* controller-serialization arcs between reconfigurations realise the
  paper's "shift ahead in time" rules, and delay propagation is simply
  the next earliest-start pass.

Critical reconfigurations (those whose outgoing task is critical) are
chained first in ``T_MIN`` order; non-critical ones are then inserted
at the first instant the controller is free, pushing later
reconfigurations ahead when they would overlap — exactly the two
procedures of Section V-G.
"""

from __future__ import annotations

from dataclasses import dataclass

from .state import PAState
from .timing import CycleError, PrecedenceGraph

__all__ = ["ReconfTask", "ReconfPlan", "schedule_reconfigurations"]


@dataclass(frozen=True)
class ReconfTask:
    """One pending reconfiguration of a region (Section V-G)."""

    id: str
    region_id: str
    ingoing_task: str
    outgoing_task: str
    exe: float
    critical: bool


@dataclass
class ReconfPlan:
    """Outcome of the phase: final timing over tasks + reconfigurations."""

    graph: PrecedenceGraph
    exe: dict[str, float]
    starts: dict[str, float]
    reconf_tasks: list[ReconfTask]
    controller_chains: list[list[str]]
    controller_of: dict[str, int]

    @property
    def controller_chain(self) -> list[str]:
        """Flat chain view (kept for the single-controller common case)."""
        return [rc for chain in self.controller_chains for rc in chain]

    def end(self, node: str) -> float:
        return self.starts[node] + self.exe[node]

    @property
    def makespan(self) -> float:
        return max(
            (self.starts[n] + self.exe[n] for n in self.starts), default=0.0
        )


def _build_reconf_tasks(state: PAState, critical: set[str]) -> list[ReconfTask]:
    """Reconfigurations between subsequent tasks of each region."""
    tasks: list[ReconfTask] = []
    counter = 0
    for region_id in sorted(state.region_chain):
        chain = state.region_chain[region_id]
        reconf_time = state.region_reconf_time(region_id)
        for ingoing, outgoing in zip(chain, chain[1:]):
            if state.options.enable_module_reuse and (
                state.impl[ingoing].name == state.impl[outgoing].name
            ):
                continue  # same bitstream already loaded: module reuse
            tasks.append(
                ReconfTask(
                    id=f"RC{counter}",
                    region_id=region_id,
                    ingoing_task=ingoing,
                    outgoing_task=outgoing,
                    exe=reconf_time,
                    critical=outgoing in critical,
                )
            )
            counter += 1
    return tasks


def schedule_reconfigurations(
    state: PAState,
    incremental: bool | None = None,
    verify: bool | None = None,
) -> ReconfPlan:
    """Run the phase and return the final augmented timing.

    With ``incremental`` (the :class:`PAOptions` default) the phase
    seeds one forward pass and lets every controller-serialization arc
    propagate only its dirty frontier, instead of recomputing a full
    CPM pass per reconfiguration — O(R·(V+E)) → one pass plus frontier
    updates.  ``verify`` cross-checks every snapshot against the full
    pass (tests / debugging).
    """
    options = state.options
    if incremental is None:
        incremental = options.incremental_timing
    if verify is None:
        verify = options.verify_incremental_timing
    timing = state.timing
    critical = timing.critical_set(options.critical_tolerance)
    reconf_tasks = _build_reconf_tasks(state, critical)

    graph = PrecedenceGraph(
        list(state.graph.nodes) + [rc.id for rc in reconf_tasks]
    )
    for src in state.graph.nodes:
        for dst, weight in state.graph.successors(src).items():
            graph.add_edge(src, dst, weight)

    exe: dict[str, float] = dict(state.exe)
    for rc in reconf_tasks:
        exe[rc.id] = rc.exe
        graph.add_edge(rc.ingoing_task, rc.id)  # Eq. 10: T_MIN_rc = T_END_in
        graph.add_edge(rc.id, rc.outgoing_task)  # bitstream before execution

    gap = state.options.reconf_gap
    n_controllers = state.arch.reconfigurators
    chains: list[list[str]] = [[] for _ in range(n_controllers)]
    controller_of: dict[str, int] = {}

    backend = options.timing

    if incremental:
        live = graph.begin_incremental(exe, backend=backend)

        def starts() -> dict[str, float]:
            if verify:
                full = graph.earliest_starts(exe, backend=backend)
                drift = max(
                    (abs(live.est[n] - full[n]) for n in full), default=0.0
                )
                if drift > 1e-9:
                    raise AssertionError(
                        f"incremental starts drifted from full CPM by {drift}"
                    )
            return live.snapshot()

    else:

        def starts() -> dict[str, float]:
            return graph.earliest_starts(exe, backend=backend)

    # -- critical reconfigurations: chain in T_MIN order -----------------
    current = starts()
    criticals = sorted(
        (rc for rc in reconf_tasks if rc.critical),
        key=lambda rc: (current[rc.id], rc.id),
    )
    for rc in criticals:
        current = starts()
        # "the last scheduled reconfiguration task tl" — per controller;
        # the least-loaded controller hosts the new reconfiguration
        # (with one controller this is exactly the paper's rule:
        # T_START = max(T_MIN, T_END_tl (+gap))).
        def _append_start(chain: list[str]) -> float:
            if not chain:
                return current[rc.id]
            last = chain[-1]
            return max(current[rc.id], current[last] + exe[last] + gap)

        controller = min(
            range(n_controllers), key=lambda c: (_append_start(chains[c]), c)
        )
        chain = chains[controller]
        if chain:
            graph.add_edge(chain[-1], rc.id, gap)
        chain.append(rc.id)
        controller_of[rc.id] = controller
        state.record(
            "reconfiguration", "scheduled", rc.outgoing_task,
            region=rc.region_id, critical=True, duration=rc.exe,
            controller=controller,
        )

    # -- non-critical reconfigurations: first-free-instant insertion --------
    current = starts()
    noncriticals = sorted(
        (rc for rc in reconf_tasks if not rc.critical),
        key=lambda rc: (current[rc.id], rc.id),
    )
    for rc in noncriticals:
        current = starts()
        t_min = current[rc.id]
        # Per controller: position after every activity starting at or
        # before T_MIN (if T_MIN lies inside a running reconfiguration
        # the serialization arc moves us to its end; later activities
        # that would overlap are pushed ahead by the outgoing arc).
        # Pick the controller giving the earliest candidate start.
        best: tuple[float, int, int] | None = None  # (start, controller, pos)
        for controller, chain in enumerate(chains):
            position = 0
            for scheduled in chain:
                if current[scheduled] <= t_min:
                    position += 1
                else:
                    break
            if position > 0:
                prev = chain[position - 1]
                candidate = max(t_min, current[prev] + exe[prev] + gap)
            else:
                candidate = t_min
            key = (candidate, controller, position)
            if best is None or key[:2] < best[:2]:
                best = key
        assert best is not None
        _, controller, position = best
        _insert_into_chain(graph, chains[controller], rc.id, position, gap)
        controller_of[rc.id] = controller
        state.record(
            "reconfiguration", "scheduled", rc.outgoing_task,
            region=rc.region_id, critical=False, duration=rc.exe,
            slot=position, controller=controller,
        )

    final = starts()
    if incremental:
        graph.end_incremental()
    return ReconfPlan(
        graph=graph,
        exe=exe,
        starts=final,
        reconf_tasks=reconf_tasks,
        controller_chains=chains,
        controller_of=controller_of,
    )


def _insert_into_chain(
    graph: PrecedenceGraph,
    chain: list[str],
    node: str,
    position: int,
    gap: float,
) -> None:
    """Insert ``node`` into the controller chain at ``position``.

    Falls back to appending on the (theoretically impossible, defended
    anyway) case where the forward arc would close a cycle.
    """
    if position > 0:
        graph.add_edge(chain[position - 1], node, gap)
    if position < len(chain):
        try:
            graph.add_edge(node, chain[position], gap)
        except CycleError:
            # Defensive: append after the conflicting activity instead.
            graph.add_edge(chain[position], node, gap)
            chain.insert(position + 1, node)
            return
    chain.insert(position, node)
