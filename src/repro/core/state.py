"""Mutable working state shared by the eight PA steps.

The state tracks, for every task, the currently selected implementation
and (for HW tasks) the reconfigurable region hosting it, plus the
serialization arcs inserted to order tasks inside a region or on a
processor core.  Time windows are always derived from the *augmented*
precedence graph via :class:`repro.core.timing.PrecedenceGraph`, so
"recompute the time windows" (which the paper does after every
implementation switch and delay propagation) is one forward+backward
pass.
"""

from __future__ import annotations

from typing import Iterable

from ..model import (
    Architecture,
    Implementation,
    Instance,
    Region,
    ResourceVector,
)
from .options import PAOptions
from .timing import EPS, PrecedenceGraph, TimingResult

__all__ = ["PAState"]


class PAState:
    """Working state for one `doSchedule` run (Sections V-A .. V-G)."""

    def __init__(
        self,
        instance: Instance,
        options: PAOptions | None = None,
        architecture: Architecture | None = None,
    ) -> None:
        self.instance = instance
        self.options = options or PAOptions()
        # The feasibility loop (Section V-H) passes a virtually shrunk
        # architecture; Eq. 1/2 bit estimates intentionally stay those of
        # the *real* fabric, only `max_res` shrinks.
        self.arch = architecture or instance.architecture
        self.taskgraph = instance.taskgraph

        self.graph = PrecedenceGraph(self.taskgraph.task_ids)
        for src, dst in self.taskgraph.edges():
            comm = (
                self.taskgraph.comm_cost(src, dst)
                if self.options.communication_overhead
                else 0.0
            )
            self.graph.add_edge(src, dst, comm)

        self.impl: dict[str, Implementation] = {}
        self.exe: dict[str, float] = {}

        self.regions: dict[str, ResourceVector] = {}
        self.region_of: dict[str, str] = {}
        self.region_chain: dict[str, list[str]] = {}
        self._region_counter = 0

        self.processor_of: dict[str, int] = {}
        self.proc_chain: dict[int, list[str]] = {
            p: [] for p in range(self.arch.processors)
        }

        self.weights = self.arch.resource_weights()
        self._timing: TimingResult | None = None
        # Optional decision trace (see repro.core.trace); populated by
        # do_schedule when the caller asks for one.
        self.trace = None

    def record(self, phase: str, event: str, task: str | None = None, **data) -> None:
        """Record a decision on the attached trace (no-op when off)."""
        if self.trace is not None:
            self.trace.record(phase, event, task, **data)

    # -- implementations -----------------------------------------------------

    def set_implementation(self, task_id: str, impl: Implementation) -> None:
        """Assign/replace the implementation of a task and invalidate windows."""
        if impl not in self.taskgraph.task(task_id).implementations:
            raise ValueError(
                f"{impl.name!r} is not an implementation of task {task_id!r}"
            )
        self.impl[task_id] = impl
        self.exe[task_id] = impl.time
        self._timing = None

    def switch_to_fastest_sw(self, task_id: str) -> Implementation:
        """Section V-C step 3: demote a HW task to its fastest SW impl."""
        impl = self.taskgraph.task(task_id).fastest_sw()
        self.set_implementation(task_id, impl)
        return impl

    def is_hw(self, task_id: str) -> bool:
        return self.impl[task_id].is_hw

    def hw_task_ids(self) -> list[str]:
        return [t for t in self.graph.nodes if self.impl[t].is_hw]

    def sw_task_ids(self) -> list[str]:
        return [t for t in self.graph.nodes if self.impl[t].is_sw]

    # -- timing ------------------------------------------------------------------

    @property
    def timing(self) -> TimingResult:
        """Current CPM windows over the augmented graph (cached)."""
        if self._timing is None:
            missing = [t for t in self.graph.nodes if t not in self.exe]
            if missing:
                raise RuntimeError(
                    f"tasks without an implementation: {missing[:5]}"
                )
            self._timing = self.graph.compute_windows(
                self.exe, backend=self.options.timing
            )
        return self._timing

    def invalidate_timing(self) -> None:
        self._timing = None

    def window(self, task_id: str) -> tuple[float, float]:
        return self.timing.window(task_id)

    def occupancy_window(self, task_id: str) -> tuple[float, float]:
        """The interval used in the region-reuse overlap tests.

        ``"cpm"`` mode: the full window ``[T_MIN, T_MAX]`` (the paper's
        literal wording — conservative, provably delay-free reuse).
        ``"slot"`` mode: the planned slot ``[T_MIN, T_MIN + T_EXE)``,
        i.e. the interval the task will occupy after Section V-E fixes
        ``T_START = T_MIN``; the serialization arcs keep the schedule
        consistent if delays later shift it.
        """
        est, lft = self.timing.window(task_id)
        if self.options.window_mode == "cpm":
            return est, lft
        return est, est + self.exe[task_id]

    # -- regions ---------------------------------------------------------------------

    def used_resources(self) -> ResourceVector:
        total = ResourceVector.zero()
        for res in self.regions.values():
            total = total + res
        return total

    def available_resources(self) -> ResourceVector:
        """Fabric capacity not yet claimed by a region."""
        used = self.used_resources()
        remaining = {r: self.arch.max_res[r] - used[r] for r in self.arch.max_res}
        return ResourceVector({r: max(0, v) for r, v in remaining.items()})

    def can_host_new_region(self, demand: ResourceVector) -> bool:
        quantized = self.instance.architecture.quantize_region(demand)
        return quantized.fits_in(self.available_resources())

    def new_region(self, demand: ResourceVector) -> str:
        """Add a region sized to ``demand`` (Section V-C), rounded up to
        the fabric's placement granularity (whole column/clock-region
        cells) so capacity bookkeeping matches what is placeable."""
        quantized = self.instance.architecture.quantize_region(demand)
        if not quantized.fits_in(self.available_resources()):
            raise ValueError("not enough fabric resources for a new region")
        region_id = f"RR{self._region_counter}"
        self._region_counter += 1
        self.regions[region_id] = quantized
        self.region_chain[region_id] = []
        return region_id

    def region_bitstream(self, region_id: str) -> float:
        """Eq. 1 for region ``s`` (against the *real* architecture)."""
        return self.instance.architecture.bitstream_bits(self.regions[region_id])

    def region_reconf_time(self, region_id: str) -> float:
        """Eq. 2 for region ``s``."""
        return self.instance.architecture.reconf_time(self.regions[region_id])

    def region_insert_position(
        self,
        region_id: str,
        task_id: str,
        require_reconf_gap: bool,
    ) -> int | None:
        """Where ``task_id`` fits in the region's chronological chain.

        Returns the insertion index when every hosted task's window is
        disjoint from ``w_t`` — and, when ``require_reconf_gap`` is set
        (critical tasks, Section V-C), the reconfiguration needed to
        host ``t`` also fits before ``T_MIN_t``.  Returns ``None`` when
        the region cannot host the task.
        """
        est_t, lft_t = self.occupancy_window(task_id)
        chain = self.region_chain[region_id]
        pos = 0
        for idx, member in enumerate(chain):
            est_m, lft_m = self.occupancy_window(member)
            if lft_m <= est_t + EPS:  # member entirely before t
                pos = idx + 1
                continue
            if est_m >= lft_t - EPS:  # member entirely after t
                break
            return None  # window overlap
        if require_reconf_gap:
            reconf = self.region_reconf_time(region_id)
            if pos > 0:
                # The reconfiguration loading t's bitstream must fit
                # between the previous hosted task and T_MIN_t.
                prev = chain[pos - 1]
                gap = reconf
                if self.options.enable_module_reuse and (
                    self.impl[prev].name == self.impl[task_id].name
                ):
                    gap = 0.0  # module reuse: no bitstream reload needed
                prev_end = self.occupancy_window(prev)[1]
                if prev_end > est_t - gap + EPS:
                    return None
            if pos < len(chain):
                # Inserting t *before* an existing task creates a new
                # reconfiguration for that task; its window must fit
                # too, or the delay lands on a critical successor.
                nxt = chain[pos]
                gap = reconf
                if self.options.enable_module_reuse and (
                    self.impl[nxt].name == self.impl[task_id].name
                ):
                    gap = 0.0
                next_start = self.occupancy_window(nxt)[0]
                if lft_t > next_start - gap + EPS:
                    return None
        return pos

    def assign_region(self, task_id: str, region_id: str, position: int) -> None:
        """Host ``task_id`` in ``region_id`` at chain index ``position``.

        Inserts the serialization arcs that "guarantee the ordering of
        tasks inside each reconfigurable region" (Section V-C).
        """
        chain = self.region_chain[region_id]
        if position > 0:
            self.graph.add_edge(chain[position - 1], task_id)
        if position < len(chain):
            self.graph.add_edge(task_id, chain[position])
        chain.insert(position, task_id)
        self.region_of[task_id] = region_id
        self._timing = None

    def unassign_region(self, task_id: str) -> None:
        """Remove a task from its region chain (used by rollbacks in tests)."""
        region_id = self.region_of.pop(task_id)
        self.region_chain[region_id].remove(task_id)
        self._timing = None

    # -- processors ----------------------------------------------------------------------

    def assign_processor(self, task_id: str, processor: int) -> None:
        """Append a SW task to a core's chain (Section V-F).

        Chronological processing means appending after the task with
        the maximum end time on that core, which is exactly the arc
        realising ``λ_p``.
        """
        if not (0 <= processor < self.arch.processors):
            raise ValueError(f"no such processor: {processor}")
        chain = self.proc_chain[processor]
        if chain:
            self.graph.add_edge(chain[-1], task_id)
        chain.append(task_id)
        self.processor_of[task_id] = processor
        self._timing = None

    # -- export helpers ------------------------------------------------------------------------

    def region_objects(self) -> dict[str, Region]:
        return {
            rid: Region(id=rid, resources=res) for rid, res in self.regions.items()
        }

    def nonempty_regions(self) -> dict[str, ResourceVector]:
        """Regions that actually host at least one task.

        Demotions to SW can leave a region empty; empty regions are
        dropped from the final solution (they would only waste fabric).
        """
        return {
            rid: res
            for rid, res in self.regions.items()
            if self.region_chain[rid]
        }

    def drop_empty_regions(self) -> None:
        for rid in [r for r, c in self.region_chain.items() if not c]:
            del self.regions[rid]
            del self.region_chain[rid]

    def ordered(self, task_ids: Iterable[str], key: str = "est") -> list[str]:
        """Sort ids by current window attribute with a stable id tie-break."""
        timing = self.timing
        if key == "est":
            return sorted(task_ids, key=lambda t: (timing.est[t], t))
        if key == "lft":
            return sorted(task_ids, key=lambda t: (timing.lft[t], t))
        raise ValueError(f"unknown sort key {key!r}")
