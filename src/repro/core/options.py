"""Configuration knobs for the PA / PA-R schedulers."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["TaskOrdering", "PAOptions"]


class TaskOrdering(enum.Enum):
    """Processing order of non-critical HW tasks during region definition.

    Section V-C argues the order "greatly impacts the quality of the
    final schedule"; Section VI relaxes it.  ``EFFICIENCY`` is the
    deterministic PA order (higher Eq. 5 index first), ``RANDOM`` is the
    PA-R order, and the remaining values exist for the ablation
    benchmarks.
    """

    EFFICIENCY = "efficiency"
    RANDOM = "random"
    COST = "cost"  # lower Eq. 3 cost first
    REVERSE_EFFICIENCY = "reverse-efficiency"
    GRAPH = "graph"  # plain topological / insertion order


@dataclass
class PAOptions:
    """Options shared by PA (deterministic) and PA-R (randomized).

    Attributes
    ----------
    ordering:
        Non-critical HW task ordering in the regions-definition step.
    seed:
        RNG seed for :attr:`TaskOrdering.RANDOM`.
    window_mode:
        Interpretation of "time windows do not overlap" in the region
        reuse tests (Sections V-C/V-D).  ``"slot"`` (default) uses the
        *planned slot* ``[T_MIN, T_MIN + T_EXE)`` — the interval the
        task will actually occupy once Section V-E fixes
        ``T_START = T_MIN`` — while ``"cpm"`` uses the full CPM window
        ``[T_MIN, T_MAX]``.  The paper's wording suggests the latter,
        but it is so conservative that under fabric contention almost
        every task demotes to software; the slot reading reproduces the
        paper's reported behaviour (see DESIGN.md and the ordering
        ablation bench).
    enable_sw_balancing:
        Toggle the Section V-D post-processing (ablation knob).
    enable_module_reuse:
        Future-work extension (Section VIII): skip the reconfiguration
        between subsequent tasks of a region that share the same
        implementation.
    communication_overhead:
        Future-work extension: honour per-edge communication costs in
        the timing engine instead of assuming they are folded into the
        execution times.
    legacy_unit_gap:
        Reproduce the paper's literal ``T_START = T_END_tl + 1`` on a
        busy reconfigurator instead of the half-open-interval
        ``T_START = T_END_tl``.
    shrink_factor / max_shrink_iterations:
        Section V-H feasibility loop: when the floorplanner rejects the
        region set, the fabric is virtually shrunk by ``shrink_factor``
        and the scheduler re-run, at most ``max_shrink_iterations``
        times.
    critical_tolerance:
        Slack below which a task counts as critical.
    jobs:
        Default worker-process count for
        :func:`~repro.core.randomized.pa_r_schedule_parallel` restart
        batches (1 = serial in-process, -1 = all cores).  Ignored by
        the deterministic PA pipeline and by the serial
        :func:`~repro.core.randomized.pa_r_schedule`.
    incremental_timing:
        Use dirty-frontier incremental earliest-start propagation in
        the reconfiguration-scheduling phase (Section V-G) instead of a
        full CPM forward pass per reconfiguration.  Bit-identical
        results; ``False`` is the escape hatch for debugging and for
        the equivalence benchmarks.
    timing:
        Timing-pass backend: ``"vector"`` (default) runs forward and
        backward longest-path propagation as per-level numpy segment
        reductions when the graph is wide enough to pay for the array
        dispatch (scalar otherwise — adaptive, bit-identical either
        way); ``"scalar"`` forces the dict-loop passes everywhere (the
        reference limb of the hot-path equivalence benchmarks).
    verify_incremental_timing:
        Cross-check every incremental earliest-start snapshot against a
        full recomputation (slow; used by tests).
    selection_policy:
        Step V-A policy: ``"cost"`` is the paper's Eq. 3 metric;
        ``"fastest"`` always picks the fastest HW candidate (an
        IS-1-like greed); ``"smallest"`` the least scarcity-weighted
        area; ``"adaptive"`` (a documented extension beyond the paper)
        picks the fastest champions when their quantized total demand
        fits the fabric — no contention means nothing to trade — and
        falls back to Eq. 3 otherwise.  Each champion still competes
        with the fastest SW implementation on execution time.
    """

    ordering: TaskOrdering = TaskOrdering.EFFICIENCY
    seed: int | None = None
    window_mode: str = "slot"
    selection_policy: str = "cost"
    enable_sw_balancing: bool = True
    enable_module_reuse: bool = False
    communication_overhead: bool = False
    legacy_unit_gap: bool = False
    shrink_factor: float = 0.9
    max_shrink_iterations: int = 12
    critical_tolerance: float = 1e-6
    incremental_timing: bool = True
    verify_incremental_timing: bool = False
    timing: str = "vector"
    jobs: int = 1

    def __post_init__(self) -> None:
        from .timing import TIMING_BACKENDS

        if isinstance(self.ordering, str):
            self.ordering = TaskOrdering(self.ordering)
        if self.timing not in TIMING_BACKENDS:
            raise ValueError(f"timing must be one of {TIMING_BACKENDS}")
        if self.window_mode not in ("slot", "cpm"):
            raise ValueError("window_mode must be 'slot' or 'cpm'")
        if self.selection_policy not in ("cost", "fastest", "smallest", "adaptive"):
            raise ValueError(
                "selection_policy must be 'cost', 'fastest', 'smallest' "
                "or 'adaptive'"
            )
        if not (0.0 < self.shrink_factor < 1.0):
            raise ValueError("shrink_factor must be in (0, 1)")
        if self.max_shrink_iterations < 1:
            raise ValueError("max_shrink_iterations must be >= 1")

    @property
    def reconf_gap(self) -> float:
        """Serialization gap on the reconfiguration controller."""
        return 1.0 if self.legacy_unit_gap else 0.0
