"""IS-k — the iterative MILP scheduler of reference [6] (substitute).

The original IS-k optimally schedules the next ``k`` tasks at each
iteration with a Gurobi MILP (mapping + implementation + start times),
keeping earlier discrete decisions fixed.  This reproduction replaces
the MILP with an **exact branch-and-bound over the same discrete
decision space** — per task: software implementation x core, or
hardware implementation x (compatible existing region | new region) —
with timing evaluated constructively (:mod:`repro.baselines.partial`).
On the window subproblem this explores the identical solution set the
MILP would, so solution quality matches; wall-clock constants differ
(see DESIGN.md, substitutions).

The window objective is the *partial-schedule makespan* (ties broken by
the sum of task end times) — the myopic criterion that makes IS-1
exhibit exactly the Figure 1 pathology the paper builds on: with an
empty fabric, the locally-fastest, resource-hungry implementation wins,
the fabric fills with large regions, and later tasks pay for it.
IS-5's five-task lookahead partially corrects this, at an exponential
search cost — matching the paper's Table I runtimes qualitatively.

IS-k *does* exploit module reuse (Section VII-A notes it as an
IS-k-only feature) and reconfiguration prefetching, both inherited from
:class:`~repro.baselines.partial.PartialSchedule`.

Search engines
--------------

``ISKOptions.engine`` selects between two decision-identical engines:

* ``"trail"`` (default) — in-place DFS over the apply/undo trail of
  :class:`~repro.baselines.partial.PartialSchedule` (do → recurse →
  undo), with a window-state dominance memo, a greedy incumbent seed
  (the rank-first descent, i.e. exactly the old DFS's first path), and
  optional parallel first-level fan-out for k ≥ 2 (``jobs > 1``).
* ``"copy"`` — the seed fork-per-option implementation, kept verbatim
  as the reference baseline for the equivalence suite and
  ``benchmarks/bench_isk_search.py``.

Both engines rank options by the same key ``(partial makespan, Σ end,
task end, impl name)``, apply the same ``branch_cap``/``node_limit``
semantics, and update the incumbent with strict ``<`` (first found
wins ties), so under non-binding node budgets they produce
bit-identical schedules (see DESIGN.md § IS-k for the dominance /
incumbent-seeding arguments; with a *binding* budget the memo makes
the trail engine reach deeper before exhaustion, which can only
improve the window solution).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field

try:  # numpy backs the batched preview ranking; scalar path works without
    import numpy as _np
except Exception:  # pragma: no cover - numpy is part of the toolchain
    _np = None

from ..model import Implementation, Instance, Schedule
from .partial import PartialSchedule

__all__ = ["ISKOptions", "ISKResult", "ISKScheduler", "isk_schedule"]

_ENGINES = ("trail", "copy")
_PREVIEW_BACKENDS = ("vector", "scalar")

#: Below this frontier size the numpy dispatch overhead of the batched
#: preview outweighs the per-option Python arithmetic it replaces
#: (measured crossover on the Table-I mix: the fill loop still costs
#: ~1.5us/option either way, so only the max/add/sort vectorization is
#: on the table and it needs a wide frontier to pay for dispatch).
_VECTOR_PREVIEW_MIN = 48

_INF_SCORE = (float("inf"), float("inf"))


@dataclass
class ISKOptions:
    """IS-k tuning knobs.

    ``branch_cap`` bounds the placement options explored per task in
    windows with k > 1 (options are pre-ranked by the myopic objective,
    so the cap drops only unpromising branches); ``node_limit`` bounds
    the branch-and-bound tree per iteration — both model how the
    authors bound Gurobi to keep IS-k "acceptable" on large graphs.

    ``engine`` picks the search engine (``"trail"`` in-place DFS or the
    seed ``"copy"`` fork-per-option DFS); ``memo`` and
    ``incumbent_seed`` toggle the trail engine's dominance memo and
    greedy incumbent bound; ``jobs`` enables parallel first-level
    fan-out for k ≥ 2 (``-1`` = all CPUs; serial reduction is
    deterministic, so any worker count yields the same schedule).

    ``preview`` picks the trail engine's option-ranking backend:
    ``"vector"`` (default) previews the whole frontier in one numpy
    pass — the per-region reconfiguration/controller-slot arithmetic is
    computed once per region instead of once per option — while
    ``"scalar"`` is the per-option reference loop.  Both produce the
    identical ranked list (same floats, same tie order), so schedules
    are bit-identical either way.
    """

    k: int = 1
    branch_cap: int = 8
    node_limit: int = 50_000
    enable_module_reuse: bool = True
    communication_overhead: bool = False
    engine: str = "trail"
    memo: bool = True
    incumbent_seed: bool = True
    preview: str = "vector"
    jobs: int = 1

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.branch_cap < 1 or self.node_limit < 1:
            raise ValueError("branch_cap/node_limit must be >= 1")
        if self.engine not in _ENGINES:
            raise ValueError(f"engine must be one of {_ENGINES}")
        if self.preview not in _PREVIEW_BACKENDS:
            raise ValueError(f"preview must be one of {_PREVIEW_BACKENDS}")
        if self.jobs < -1:
            raise ValueError("jobs must be >= -1")


@dataclass
class ISKResult:
    """Outcome of an IS-k (or exhaustive) run.

    Mirrors :class:`~repro.core.scheduler.PAResult`'s ``makespan`` /
    ``total_time`` / ``feasible`` surface so report code can treat all
    scheduler results uniformly.  ``stats`` carries search-engine
    counters (nodes expanded, bound/memo prunes, incumbent seeds,
    fallback completions, undo-trail high-water mark, fan-out windows).
    """

    schedule: Schedule
    elapsed: float
    iterations: int
    nodes: int
    stats: dict = field(default_factory=dict)
    feasible: bool = True

    @property
    def makespan(self) -> float:
        return self.schedule.makespan

    @property
    def total_time(self) -> float:
        return self.elapsed


_PROC, _REGION, _NEW = 0, 1, 2


@dataclass(frozen=True)
class _Option:
    """One discrete decision for a task.

    ``kind``/``ref`` pre-resolve the target (processor index or region
    id) so the hot preview/apply paths never re-parse the string.
    """

    impl: Implementation
    target: str  # "proc:<i>", "region:<id>" or "new"
    kind: int = _NEW
    ref: int | str | None = None


def _score(state: PartialSchedule) -> tuple[float, float]:
    """Myopic window objective: (partial makespan, sum of ends)."""
    return (state.makespan, sum(state.end.values()))


def _init_stats(opts: "ISKOptions", jobs: int) -> dict:
    return {
        "engine": opts.engine,
        "jobs": jobs,
        "nodes_expanded": 0,
        "bound_pruned": 0,
        "memo_hits": 0,
        "memo_entries": 0,
        "incumbent_seeds": 0,
        "fallback_completions": 0,
        "max_undo_depth": 0,
        "fanout_windows": 0,
        "hint_windows": 0,
        "hint_pruned": 0,
        "hint_reruns": 0,
    }


_WORKER_STAT_KEYS = (
    "bound_pruned",
    "memo_hits",
    "memo_entries",
    "fallback_completions",
)


def _fanout_worker(payload: tuple) -> tuple:
    """Explore one capped first-level branch with the full node budget.

    Module-level so the :mod:`repro.analysis.parallel` pool can pickle
    it; each worker's subtree is independent of its siblings (own
    budget, own memo), which is what makes the fan-out bit-identical
    for any worker count.
    """
    options, state, window, option, seed_score = payload
    # parallel_map workers must be pure functions of their item (the
    # serial fallback hands every payload the same state object).
    state = state.copy()
    scheduler = ISKScheduler(options)
    stats = _init_stats(options, jobs=1)
    scheduler._apply(state, window[0], option)
    best_score, best_tail, nodes, _deepest = scheduler._dfs_search(
        state, window, 1, seed_score, stats
    )
    return best_score, best_tail, nodes, stats


class ISKScheduler:
    """Iterative window scheduler (see module docstring)."""

    def __init__(self, options: ISKOptions | None = None) -> None:
        self.options = options or ISKOptions()

    # -- public API --------------------------------------------------------

    def schedule(
        self, instance: Instance, incumbent_hint: float | None = None
    ) -> ISKResult:
        """Run the iterative window scheduler.

        ``incumbent_hint`` is an optional *external* upper bound on the
        makespan (e.g. a neighboring design point's result in a sweep).
        It is used purely as an extra prune threshold in the trail DFS
        and is **provably result-neutral**: every window solve either
        proves its hinted search identical to the unhinted one (all
        hint-pruned subtrees contain only leaves strictly worse in the
        first score component than a leaf that *was* found under the
        hint), or — when that proof is unavailable because no leaf beat
        the incumbent seed or the node budget bound — re-runs the window
        without the hint (``stats["hint_reruns"]``).  Schedules are
        therefore bit-identical with or without a hint, for *any* hint
        value; a good hint only removes provably-losing work.  The hint
        is ignored by the ``copy`` engine and by the parallel first-level
        fan-out (``jobs > 1``), both of which simply run unhinted.
        """
        t0 = _time.perf_counter()
        opts = self.options
        topo = instance.taskgraph.topological_order()
        # Imported lazily: repro.analysis pulls in the engine package,
        # which imports this module back at package-init time.
        from ..analysis.parallel import resolve_jobs

        jobs = resolve_jobs(opts.jobs)
        stats = _init_stats(opts, jobs)

        state = PartialSchedule(
            instance,
            communication_overhead=opts.communication_overhead,
            enable_module_reuse=opts.enable_module_reuse,
        )
        total_nodes = 0
        iterations = 0
        for chunk_start in range(0, len(topo), opts.k):
            window = topo[chunk_start : chunk_start + opts.k]
            if opts.engine == "copy":
                state, nodes = self._solve_window_copy(state, window)
            else:
                state, nodes = self._solve_window_trail(
                    state, window, stats, jobs, hint=incumbent_hint
                )
            total_nodes += nodes
            iterations += 1
        stats["nodes_expanded"] = total_nodes

        schedule = state.to_schedule(
            scheduler=f"IS-{opts.k}",
            metadata={"nodes": total_nodes, "iterations": iterations},
        )
        return ISKResult(
            schedule=schedule,
            elapsed=_time.perf_counter() - t0,
            iterations=iterations,
            nodes=total_nodes,
            stats=stats,
        )

    # -- shared decision space ---------------------------------------------

    def _task_options(self, state: PartialSchedule, task_id: str) -> list[_Option]:
        """The discrete decision space for one task in the window."""
        task = state.instance.taskgraph.task(task_id)
        options: list[_Option] = []
        for impl in task.sw_implementations:
            for proc in range(state.arch.processors):
                options.append(
                    _Option(impl=impl, target=f"proc:{proc}", kind=_PROC, ref=proc)
                )
        for impl in task.hw_implementations:
            for region in state.regions.values():
                if impl.resources.fits_in(region.resources):
                    options.append(
                        _Option(
                            impl=impl,
                            target=f"region:{region.id}",
                            kind=_REGION,
                            ref=region.id,
                        )
                    )
            if state.can_create_region(impl.resources):
                options.append(_Option(impl=impl, target="new"))
        return options

    @staticmethod
    def _apply(state: PartialSchedule, task_id: str, option: _Option) -> None:
        if option.kind == _PROC:
            state.place_sw(task_id, option.impl, option.ref)
        elif option.kind == _REGION:
            state.place_hw(task_id, option.impl, option.ref)
        else:  # "new"
            region = state.create_region(option.impl.resources)
            state.place_hw(task_id, option.impl, region.id)

    # -- trail engine ------------------------------------------------------

    def _preview_key(
        self, state: PartialSchedule, option: _Option, ready: float
    ) -> tuple[float, float, float, str]:
        """The ranking key ``(makespan, Σ end, task end, impl name)``
        this option *would* produce, computed read-only.

        Mirrors the timing arithmetic of
        :meth:`~repro.baselines.partial.PartialSchedule.place_sw` /
        ``place_hw`` operation-for-operation (same ``max`` argument
        order, same addition order), so the previewed key is
        bit-identical to applying the option and reading the
        incremental objective — which in turn matches the copy
        engine's fork-and-score key.
        """
        impl = option.impl
        makespan = state.makespan
        if option.kind == _PROC:
            start = max(ready, state.proc_free[option.ref])
        elif option.kind == _REGION:
            region = state.regions[option.ref]
            if region.sequence and not (
                state.module_reuse and region.loaded == impl.name
            ):
                duration = state.arch.reconf_time(region.resources)
                _ctrl, rc_start = state._controller_slot(
                    region.free_time, duration
                )
                rc_end = rc_start + duration
                if rc_end > makespan:
                    makespan = rc_end
                start = max(ready, rc_end)
            else:
                start = max(ready, region.free_time)
        else:  # "new" — a fresh region is idle at t=0 and needs no reconf
            start = max(ready, 0.0)
        end = start + impl.time
        if end > makespan:
            makespan = end
        return (makespan, state.end_sum + end, end, impl.name)

    def _ranked_options(
        self, state: PartialSchedule, task_id: str
    ) -> list[tuple[tuple[float, float, float, str], _Option]]:
        """Rank options by read-only preview — no state mutation, so
        only the branches the DFS actually explores pay for an
        apply/undo.  Ordering is exactly the copy engine's
        (``end_sum`` accumulates task ends in placement order, which is
        the summation order of ``sum(end.values())``)."""
        try:
            ready = state.ready_time(task_id)
        except ValueError:
            return []
        options = self._task_options(state, task_id)
        if (
            self.options.preview == "vector"
            and _np is not None
            and len(options) >= _VECTOR_PREVIEW_MIN
        ):
            return self._ranked_options_vector(state, ready, options)
        ranked = [
            (self._preview_key(state, option, ready), option)
            for option in options
        ]
        ranked.sort(key=lambda item: item[0])
        return ranked

    def _ranked_options_vector(
        self, state: PartialSchedule, ready: float, options: list[_Option]
    ) -> list[tuple[tuple[float, float, float, str], _Option]]:
        """Batched :meth:`_preview_key` over the whole frontier.

        Bit-identical to the scalar loop: the array ops replay the same
        float operations with the same operand order (``max(ready, .)``,
        one addition for the end time, one for the end-sum), the
        reconfiguration end per region is the *same* Python-computed
        float shared by every option targeting that region (it never
        depends on the implementation), and ``np.lexsort`` is stable
        with the same key priority as sorting the Python key tuples.
        """
        n = len(options)
        makespan = state.makespan
        times = _np.fromiter((o.impl.time for o in options), _np.float64, n)
        base = [0.0] * n  # earliest target-free time, filled in Python
        pre = _np.full(n, makespan, dtype=_np.float64)
        rc_end_of: dict[str, float] = {}
        proc_free = state.proc_free
        regions = state.regions
        for j, option in enumerate(options):
            kind = option.kind
            if kind == _PROC:
                base[j] = proc_free[option.ref]
            elif kind == _REGION:
                region = regions[option.ref]
                if region.sequence and not (
                    state.module_reuse and region.loaded == option.impl.name
                ):
                    rc_end = rc_end_of.get(region.id)
                    if rc_end is None:
                        duration = state.arch.reconf_time(region.resources)
                        _ctrl, rc_start = state._controller_slot(
                            region.free_time, duration
                        )
                        rc_end = rc_start + duration
                        rc_end_of[region.id] = rc_end
                    base[j] = rc_end
                    if rc_end > makespan:
                        pre[j] = rc_end
                else:
                    base[j] = region.free_time
            # "new" — a fresh region is idle at t=0, base stays 0.0
        start = _np.maximum(ready, _np.array(base, dtype=_np.float64))
        end = start + times
        ms = _np.maximum(pre, end)
        end_sum = state.end_sum + end
        names = [o.impl.name for o in options]
        # Integer ranks stand in for the string tie-break: the map is
        # strictly monotone on distinct names, and both lexsort and
        # Python's sort are stable, so the order is identical.
        rank_of = {nm: i for i, nm in enumerate(sorted(set(names)))}
        ranks = _np.fromiter((rank_of[nm] for nm in names), _np.int64, n)
        order = _np.lexsort((ranks, end, end_sum, ms))
        ms_l = ms.tolist()
        es_l = end_sum.tolist()
        end_l = end.tolist()
        return [
            ((ms_l[i], es_l[i], end_l[i], names[i]), options[i])
            for i in order.tolist()
        ]

    def _relevant_prefixes(self, state: PartialSchedule, window: list[str]) -> list[list[str]]:
        """For each depth d: the window-prefix tasks whose end times can
        still influence the remaining window (successor in it) — the
        only prefix timing the dominance signature must pin down."""
        graph = state.instance.taskgraph
        relevant: list[list[str]] = []
        for d in range(len(window)):
            rest = set(window[d:])
            relevant.append(
                [t for t in window[:d]
                 if any(s in rest for s in graph.successors(t))]
            )
        return relevant

    @staticmethod
    def _signature(state: PartialSchedule, depth: int, relevant: list[str]) -> tuple:
        """Canonical window-state frontier at ``depth``.

        Two states with equal signatures offer identical completion
        sets with identical rank orderings (their end-sums differ by a
        constant, which shifts every completion's tie-break equally),
        so the one with the larger running end-sum is dominated.
        """
        return (
            depth,
            state.makespan,
            tuple(state.proc_free),
            tuple(
                (r.id, r.resources, r.free_time, r.loaded, bool(r.sequence))
                for r in state.regions.values()
            ),
            tuple(tuple(c) for c in state.controllers),
            tuple(state.end[t] for t in relevant),
        )

    def _greedy_completion(
        self, state: PartialSchedule, window: list[str], start_depth: int
    ) -> tuple[tuple[float, float], list[_Option]] | None:
        """Rank-first descent from ``start_depth`` — exactly the first
        path the DFS would walk.  Returns (score, options) and restores
        the state; ``None`` on a dead end (then no incumbent is seeded
        and the search starts from an infinite bound, as the copy
        engine does)."""
        mark = state.trail_mark()
        taken: list[_Option] = []
        for task_id in window[start_depth:]:
            ranked = self._ranked_options(state, task_id)
            if not ranked:
                state.undo_to(mark)
                return None
            option = ranked[0][1]
            self._apply(state, task_id, option)
            taken.append(option)
        score = (state.makespan, state.end_sum)
        state.undo_to(mark)
        return score, taken

    def _dfs_search(
        self,
        state: PartialSchedule,
        window: list[str],
        start_depth: int,
        seed_score: tuple[float, float] | None,
        stats: dict,
        hint: float | None = None,
    ) -> tuple[tuple[float, float], list[_Option] | None, int, tuple[int, list[_Option]]]:
        """Bounded DFS from ``start_depth`` (earlier window tasks are
        already applied).  Returns ``(best_score, best_tail, nodes,
        deepest)`` where ``best_tail`` is ``None`` when no leaf beat
        the seed (the caller then keeps the seed path) and ``deepest``
        is the deepest partial reached (for the budget fallback).

        ``hint`` adds one extra prune (``key[0] > hint``) checked only
        after the ordinary incumbent bound, so ``stats["hint_pruned"]``
        counts exactly the subtrees the hint removed *beyond* what the
        incumbent already pruned.  Soundness is argued in
        :meth:`schedule` / DESIGN.md: any surviving leaf has makespan
        <= hint while every hint-pruned subtree only contains leaves
        with makespan > hint, so a found ``best_tail`` is provably the
        unhinted winner (ties included — the pruned leaves are strictly
        worse in the first component and the visit order of surviving
        branches is unchanged)."""
        opts = self.options
        n = len(window)
        relevant = self._relevant_prefixes(state, window)
        best_score = seed_score if seed_score is not None else _INF_SCORE
        best_tail: list[_Option] | None = None
        nodes = 0
        memo: dict[tuple, float] = {}
        path: list[_Option] = []
        deepest: tuple[int, list[_Option]] = (start_depth, [])

        def dfs(depth: int) -> None:
            nonlocal best_score, best_tail, nodes, deepest
            if depth == n:
                score = (state.makespan, state.end_sum)
                if score < best_score:
                    best_score = score
                    best_tail = list(path)
                return
            if nodes > opts.node_limit:
                return
            if opts.memo:
                sig = self._signature(state, depth, relevant[depth])
                prev = memo.get(sig)
                if prev is not None and prev <= state.end_sum:
                    stats["memo_hits"] += 1
                    return
                memo[sig] = state.end_sum
            ranked = self._ranked_options(state, window[depth])
            cap = opts.branch_cap if n > 1 else len(ranked)
            for key, option in ranked[:cap]:
                nodes += 1
                # The partial makespan only grows as tasks are added, so
                # it is an admissible bound for pruning.
                if key[0] > best_score[0]:
                    stats["bound_pruned"] += 1
                    continue
                if hint is not None and key[0] > hint:
                    stats["hint_pruned"] += 1
                    continue
                mark = state.trail_mark()
                self._apply(state, window[depth], option)
                depth_now = state.trail_depth()
                if depth_now > stats["max_undo_depth"]:
                    stats["max_undo_depth"] = depth_now
                path.append(option)
                if depth + 1 > deepest[0]:
                    deepest = (depth + 1, list(path))
                dfs(depth + 1)
                path.pop()
                state.undo_to(mark)

        dfs(start_depth)
        stats["memo_entries"] += len(memo)
        return best_score, best_tail, nodes, deepest

    def _backtrack_complete(
        self, state: PartialSchedule, window: list[str], depth: int
    ) -> list[_Option] | None:
        """First feasible completion from ``depth`` (rank-first with
        backtracking, no cap); ``None`` iff the subtree is infeasible."""
        if depth == len(window):
            return []
        for _key, option in self._ranked_options(state, window[depth]):
            mark = state.trail_mark()
            self._apply(state, window[depth], option)
            tail = self._backtrack_complete(state, window, depth + 1)
            state.undo_to(mark)
            if tail is not None:
                return [option, *tail]
        return None

    def _fallback_completion(
        self,
        state: PartialSchedule,
        window: list[str],
        deepest: tuple[int, list[_Option]],
        stats: dict,
    ) -> list[_Option]:
        """Node budget exhausted before any leaf (and no seed): complete
        from the deepest best partial the search reached, falling back
        to the window root only if that subtree is infeasible.  Raises
        only when the *whole* window has no feasible completion."""
        stats["fallback_completions"] += 1
        depth, prefix = deepest
        if depth > 0:
            mark = state.trail_mark()
            for i, option in enumerate(prefix):
                self._apply(state, window[i], option)
            tail = self._backtrack_complete(state, window, depth)
            state.undo_to(mark)
            if tail is not None:
                return [*prefix, *tail]
        tail = self._backtrack_complete(state, window, 0)
        if tail is None:
            raise RuntimeError(f"no feasible completion for window {window}")
        return tail

    def _solve_window_trail(
        self,
        state: PartialSchedule,
        window: list[str],
        stats: dict,
        jobs: int,
        hint: float | None = None,
    ) -> tuple[PartialSchedule, int]:
        """In-place window solve: seed the incumbent, search (serial or
        fanned out), then commit the winning path onto ``state``.

        When a ``hint`` fires it is only trusted if the hinted search
        both found a leaf and stayed inside the node budget — exactly
        the two conditions under which the hinted tree is provably
        result-identical to the unhinted one.  Otherwise the window is
        re-searched without the hint (the independent solve, verbatim),
        so an arbitrarily wrong hint costs time but never a decision."""
        opts = self.options
        seed = (
            self._greedy_completion(state, window, 0)
            if opts.incumbent_seed
            else None
        )
        if seed is not None:
            stats["incumbent_seeds"] += 1
        seed_score = seed[0] if seed is not None else None

        if jobs > 1 and len(window) >= 2:
            # Fan-out workers each own a node budget; the identity proof
            # above does not compose across budgets, so the hint is
            # ignored here (documented in :meth:`schedule`).
            best_path, nodes = self._fanout_search(state, window, seed, stats, jobs)
        else:
            if hint is not None:
                stats["hint_windows"] += 1
            pruned_before = stats["hint_pruned"]
            _best, best_tail, nodes, deepest = self._dfs_search(
                state, window, 0, seed_score, stats, hint=hint
            )
            hint_fired = stats["hint_pruned"] > pruned_before
            if hint_fired and (best_tail is None or nodes > opts.node_limit):
                # Ambiguous: the hint cut subtrees and either no leaf
                # beat the seed (a cut subtree might have) or the node
                # budget bound (the unhinted run walks other nodes).
                # Re-run the window unhinted — this *is* the
                # independent solve, so identity is restored exactly.
                stats["hint_reruns"] += 1
                _best, best_tail, rerun_nodes, deepest = self._dfs_search(
                    state, window, 0, seed_score, stats
                )
                nodes += rerun_nodes
            if best_tail is not None:
                best_path = best_tail
            elif seed is not None:
                best_path = seed[1]
            else:
                best_path = self._fallback_completion(state, window, deepest, stats)

        state.trail_clear()
        for i, option in enumerate(best_path):
            self._apply(state, window[i], option)
        return state, nodes

    def _fanout_search(
        self,
        state: PartialSchedule,
        window: list[str],
        seed: tuple[tuple[float, float], list[_Option]] | None,
        stats: dict,
        jobs: int,
    ) -> tuple[list[_Option], int]:
        """Parallel first-level fan-out: each capped depth-0 branch is
        explored by a worker with the full node budget (independent of
        its siblings), then reduced in branch order with strict ``<`` —
        the same first-found-wins rule as the serial DFS, so the result
        is identical for any worker count."""
        from ..analysis.parallel import parallel_map

        opts = self.options
        stats["fanout_windows"] += 1
        seed_score = seed[0] if seed is not None else None
        ranked0 = self._ranked_options(state, window[0])
        state.trail_clear()  # workers pickle a pristine, non-recording state

        nodes = 0
        bound0 = seed_score[0] if seed_score is not None else float("inf")
        payloads: list[tuple] = []
        branch_options: list[_Option] = []
        for key, option in ranked0[: opts.branch_cap]:
            nodes += 1
            if key[0] > bound0:
                stats["bound_pruned"] += 1
                continue
            payloads.append((opts, state, window, option, seed_score))
            branch_options.append(option)

        results = parallel_map(_fanout_worker, payloads, jobs=jobs)

        best_score = seed_score if seed_score is not None else _INF_SCORE
        best_path = list(seed[1]) if seed is not None else None
        for option, (w_score, w_tail, w_nodes, w_stats) in zip(
            branch_options, results
        ):
            nodes += w_nodes
            for stat_key in _WORKER_STAT_KEYS:
                stats[stat_key] += w_stats[stat_key]
            if w_stats["max_undo_depth"] > stats["max_undo_depth"]:
                stats["max_undo_depth"] = w_stats["max_undo_depth"]
            if w_tail is not None and w_score < best_score:
                best_score = w_score
                best_path = [option, *w_tail]
        if best_path is None:
            best_path = self._fallback_completion(state, window, (0, []), stats)
        return best_path, nodes

    # -- copy engine (the seed implementation, kept as the reference) ------

    def _ranked_forks(
        self, state: PartialSchedule, task_id: str
    ) -> list[tuple[tuple[float, float], PartialSchedule]]:
        """Fork the state per option, ranked by the myopic objective."""
        ranked: list[tuple[tuple[float, float, float, str], PartialSchedule]] = []
        for option in self._task_options(state, task_id):
            fork = state.copy()
            try:
                self._apply(fork, task_id, option)
            except ValueError:
                continue
            makespan, end_sum = _score(fork)
            ranked.append(
                ((makespan, end_sum, fork.end[task_id], option.impl.name), fork)
            )
        ranked.sort(key=lambda item: item[0])
        return [((key[0], key[1]), fork) for key, fork in ranked]

    def _solve_window_copy(
        self, state: PartialSchedule, window: list[str]
    ) -> tuple[PartialSchedule, int]:
        """Exact (budget-bounded) DFS over the window's decision space —
        the seed fork-per-option engine, byte-for-byte semantics."""
        opts = self.options
        best_state: PartialSchedule | None = None
        best_score: tuple[float, float] = (float("inf"), float("inf"))
        nodes = 0

        def dfs(current: PartialSchedule, depth: int) -> None:
            nonlocal best_state, best_score, nodes
            if depth == len(window):
                score = _score(current)
                if score < best_score:
                    best_score = score
                    best_state = current
                return
            if nodes > opts.node_limit:
                return
            ranked = self._ranked_forks(current, window[depth])
            cap = opts.branch_cap if len(window) > 1 else len(ranked)
            for (makespan, _end_sum), fork in ranked[:cap]:
                nodes += 1
                # The partial makespan only grows as tasks are added, so
                # it is an admissible bound for pruning.
                if makespan > best_score[0]:
                    continue
                dfs(fork, depth + 1)

        dfs(state, 0)
        if best_state is None:
            # Node budget exhausted before any leaf: greedy completion.
            best_state = state
            for task_id in window:
                ranked = self._ranked_forks(best_state, task_id)
                if not ranked:
                    raise RuntimeError(f"task {task_id!r} has no feasible option")
                best_state = ranked[0][1]
        return best_state, nodes


def isk_schedule(instance: Instance, k: int = 1, **kwargs) -> ISKResult:
    """Convenience wrapper: ``isk_schedule(instance, k=5)``."""
    return ISKScheduler(ISKOptions(k=k, **kwargs)).schedule(instance)
