"""IS-k — the iterative MILP scheduler of reference [6] (substitute).

The original IS-k optimally schedules the next ``k`` tasks at each
iteration with a Gurobi MILP (mapping + implementation + start times),
keeping earlier discrete decisions fixed.  This reproduction replaces
the MILP with an **exact branch-and-bound over the same discrete
decision space** — per task: software implementation x core, or
hardware implementation x (compatible existing region | new region) —
with timing evaluated constructively (:mod:`repro.baselines.partial`).
On the window subproblem this explores the identical solution set the
MILP would, so solution quality matches; wall-clock constants differ
(see DESIGN.md, substitutions).

The window objective is the *partial-schedule makespan* (ties broken by
the sum of task end times) — the myopic criterion that makes IS-1
exhibit exactly the Figure 1 pathology the paper builds on: with an
empty fabric, the locally-fastest, resource-hungry implementation wins,
the fabric fills with large regions, and later tasks pay for it.
IS-5's five-task lookahead partially corrects this, at an exponential
search cost — matching the paper's Table I runtimes qualitatively.

IS-k *does* exploit module reuse (Section VII-A notes it as an
IS-k-only feature) and reconfiguration prefetching, both inherited from
:class:`~repro.baselines.partial.PartialSchedule`.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field

from ..model import Implementation, Instance, Schedule
from .partial import PartialSchedule

__all__ = ["ISKOptions", "ISKResult", "ISKScheduler", "isk_schedule"]


@dataclass
class ISKOptions:
    """IS-k tuning knobs.

    ``branch_cap`` bounds the placement options explored per task in
    windows with k > 1 (options are pre-ranked by the myopic objective,
    so the cap drops only unpromising branches); ``node_limit`` bounds
    the branch-and-bound tree per iteration — both model how the
    authors bound Gurobi to keep IS-k "acceptable" on large graphs.
    """

    k: int = 1
    branch_cap: int = 8
    node_limit: int = 50_000
    enable_module_reuse: bool = True
    communication_overhead: bool = False

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.branch_cap < 1 or self.node_limit < 1:
            raise ValueError("branch_cap/node_limit must be >= 1")


@dataclass
class ISKResult:
    """Outcome of an IS-k (or exhaustive) run.

    Mirrors :class:`~repro.core.scheduler.PAResult`'s ``makespan`` /
    ``total_time`` / ``feasible`` surface so report code can treat all
    scheduler results uniformly.
    """

    schedule: Schedule
    elapsed: float
    iterations: int
    nodes: int
    stats: dict = field(default_factory=dict)
    feasible: bool = True

    @property
    def makespan(self) -> float:
        return self.schedule.makespan

    @property
    def total_time(self) -> float:
        return self.elapsed


@dataclass(frozen=True)
class _Option:
    """One discrete decision for a task."""

    impl: Implementation
    target: str  # "proc:<i>", "region:<id>" or "new"


def _score(state: PartialSchedule) -> tuple[float, float]:
    """Myopic window objective: (partial makespan, sum of ends)."""
    return (state.makespan, sum(state.end.values()))


class ISKScheduler:
    """Iterative window scheduler (see module docstring)."""

    def __init__(self, options: ISKOptions | None = None) -> None:
        self.options = options or ISKOptions()

    # -- public API --------------------------------------------------------

    def schedule(self, instance: Instance) -> ISKResult:
        t0 = _time.perf_counter()
        opts = self.options
        topo = instance.taskgraph.topological_order()

        state = PartialSchedule(
            instance,
            communication_overhead=opts.communication_overhead,
            enable_module_reuse=opts.enable_module_reuse,
        )
        total_nodes = 0
        iterations = 0
        for chunk_start in range(0, len(topo), opts.k):
            window = topo[chunk_start : chunk_start + opts.k]
            state, nodes = self._solve_window(state, window)
            total_nodes += nodes
            iterations += 1

        schedule = state.to_schedule(
            scheduler=f"IS-{opts.k}",
            metadata={"nodes": total_nodes, "iterations": iterations},
        )
        return ISKResult(
            schedule=schedule,
            elapsed=_time.perf_counter() - t0,
            iterations=iterations,
            nodes=total_nodes,
        )

    # -- window subproblem ------------------------------------------------------

    def _task_options(self, state: PartialSchedule, task_id: str) -> list[_Option]:
        """The discrete decision space for one task in the window."""
        task = state.instance.taskgraph.task(task_id)
        options: list[_Option] = []
        for impl in task.sw_implementations:
            for proc in range(state.arch.processors):
                options.append(_Option(impl=impl, target=f"proc:{proc}"))
        for impl in task.hw_implementations:
            for region in state.regions.values():
                if impl.resources.fits_in(region.resources):
                    options.append(_Option(impl=impl, target=f"region:{region.id}"))
            if state.can_create_region(impl.resources):
                options.append(_Option(impl=impl, target="new"))
        return options

    @staticmethod
    def _apply(state: PartialSchedule, task_id: str, option: _Option) -> None:
        if option.target.startswith("proc:"):
            state.place_sw(task_id, option.impl, int(option.target[5:]))
        elif option.target.startswith("region:"):
            state.place_hw(task_id, option.impl, option.target[7:])
        else:  # "new"
            region = state.create_region(option.impl.resources)
            state.place_hw(task_id, option.impl, region.id)

    def _ranked_forks(
        self, state: PartialSchedule, task_id: str
    ) -> list[tuple[tuple[float, float], PartialSchedule]]:
        """Fork the state per option, ranked by the myopic objective."""
        ranked: list[tuple[tuple[float, float, float, str], PartialSchedule]] = []
        for option in self._task_options(state, task_id):
            fork = state.copy()
            try:
                self._apply(fork, task_id, option)
            except ValueError:
                continue
            makespan, end_sum = _score(fork)
            ranked.append(
                ((makespan, end_sum, fork.end[task_id], option.impl.name), fork)
            )
        ranked.sort(key=lambda item: item[0])
        return [((key[0], key[1]), fork) for key, fork in ranked]

    def _solve_window(
        self, state: PartialSchedule, window: list[str]
    ) -> tuple[PartialSchedule, int]:
        """Exact (budget-bounded) DFS over the window's decision space."""
        opts = self.options
        best_state: PartialSchedule | None = None
        best_score: tuple[float, float] = (float("inf"), float("inf"))
        nodes = 0

        def dfs(current: PartialSchedule, depth: int) -> None:
            nonlocal best_state, best_score, nodes
            if depth == len(window):
                score = _score(current)
                if score < best_score:
                    best_score = score
                    best_state = current
                return
            if nodes > opts.node_limit:
                return
            ranked = self._ranked_forks(current, window[depth])
            cap = opts.branch_cap if len(window) > 1 else len(ranked)
            for (makespan, _end_sum), fork in ranked[:cap]:
                nodes += 1
                # The partial makespan only grows as tasks are added, so
                # it is an admissible bound for pruning.
                if makespan > best_score[0]:
                    continue
                dfs(fork, depth + 1)

        dfs(state, 0)
        if best_state is None:
            # Node budget exhausted before any leaf: greedy completion.
            best_state = state
            for task_id in window:
                ranked = self._ranked_forks(best_state, task_id)
                if not ranked:
                    raise RuntimeError(f"task {task_id!r} has no feasible option")
                best_state = ranked[0][1]
        return best_state, nodes


def isk_schedule(instance: Instance, k: int = 1, **kwargs) -> ISKResult:
    """Convenience wrapper: ``isk_schedule(instance, k=5)``."""
    return ISKScheduler(ISKOptions(k=k, **kwargs)).schedule(instance)
