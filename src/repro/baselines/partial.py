"""Constructive partial-schedule state for the baseline schedulers.

IS-k (reference [6]) and the list-based scheduler build schedules task
by task.  :class:`PartialSchedule` keeps the committed state — regions
with their currently loaded module, processor queues, the
reconfiguration-controller timeline — and offers *placement* operations
whose timing semantics match the validator's invariants by
construction:

* a task starts after its predecessors (plus optional communication);
* a region runs one task at a time; loading a different module first
  requires a reconfiguration of the region's Eq. 2 duration, scheduled
  in the earliest controller gap after the region goes idle
  (reconfiguration *prefetching*: the controller may load the bitstream
  while the task's predecessors are still running);
* loading the same module twice in a row needs no reconfiguration
  (*module reuse* — IS-k exploits this; the paper's PA does not).

States are cheaply copyable so branch-and-bound can fork them, and —
since the IS-k search-engine overhaul — support an **apply/undo
trail**: :meth:`PartialSchedule.trail_mark` starts recording every
mutation (region state, processor free-times/sequences, controller
intervals, ``impl``/``placement``/``start``/``end`` entries, the
``used`` vector, the running end-sum and makespan) on an undo log, and
:meth:`PartialSchedule.undo_to` rewinds to a mark, so depth-first
search explores options by do→recurse→undo instead of forking a full
copy per option.  Undo restores the *recorded* float values (never
re-derives them arithmetically), so a rewound state is bit-identical
to the state at the mark — the property the trail-vs-copy
decision-equivalence suite leans on.

The window objective ``(makespan, Σ end)`` is maintained incrementally
(``end_sum`` / the O(1) ``makespan`` property): both only ever grow by
``max``/left-to-right addition as tasks are committed, so the running
values equal a fresh O(n) recomputation bit-for-bit.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field

from ..model import (
    Architecture,
    Implementation,
    Instance,
    ProcessorPlacement,
    Reconfiguration,
    Region,
    RegionPlacement,
    ResourceVector,
    Schedule,
    ScheduledTask,
)

__all__ = ["RegionState", "PartialSchedule"]


@dataclass
class RegionState:
    """One reconfigurable region during constructive scheduling."""

    id: str
    resources: ResourceVector
    free_time: float = 0.0  # when the last hosted task finishes
    loaded: str | None = None  # implementation name currently configured
    sequence: list[str] = field(default_factory=list)

    def copy(self) -> "RegionState":
        return RegionState(
            id=self.id,
            resources=self.resources,
            free_time=self.free_time,
            loaded=self.loaded,
            sequence=list(self.sequence),
        )


class PartialSchedule:
    """Mutable constructive schedule over an :class:`Instance`."""

    def __init__(
        self,
        instance: Instance,
        communication_overhead: bool = False,
        enable_module_reuse: bool = True,
    ) -> None:
        self.instance = instance
        self.arch: Architecture = instance.architecture
        self.comm = communication_overhead
        self.module_reuse = enable_module_reuse

        self.regions: dict[str, RegionState] = {}
        self._region_counter = 0
        self.proc_free: list[float] = [0.0] * self.arch.processors
        self.proc_sequence: list[list[str]] = [[] for _ in range(self.arch.processors)]
        # Busy intervals per reconfiguration controller, sorted by start
        # (the paper's architecture has one; the multi-reconfigurator
        # extension of reference [8] is supported via the architecture).
        self.controllers: list[list[tuple[float, float]]] = [
            [] for _ in range(self.arch.reconfigurators)
        ]
        self.reconfigurations: list[Reconfiguration] = []

        self.impl: dict[str, Implementation] = {}
        self.placement: dict[str, ProcessorPlacement | RegionPlacement] = {}
        self.start: dict[str, float] = {}
        self.end: dict[str, float] = {}
        self.used = ResourceVector.zero()
        # Incremental objective: running sum of task end times and the
        # running makespan (task ends + controller busy ends).  Both are
        # monotone under the placement ops, and undo restores recorded
        # values, so they always equal a fresh recomputation.
        self.end_sum: float = 0.0
        self._makespan: float = 0.0
        # Undo log: None while not recording (the list scheduler and
        # plain constructive runs pay only a None-check per op).
        self._trail: list[tuple] | None = None

    # -- copying ------------------------------------------------------------

    def copy(self) -> "PartialSchedule":
        dup = PartialSchedule.__new__(PartialSchedule)
        dup.instance = self.instance
        dup.arch = self.arch
        dup.comm = self.comm
        dup.module_reuse = self.module_reuse
        dup.regions = {rid: r.copy() for rid, r in self.regions.items()}
        dup._region_counter = self._region_counter
        dup.proc_free = list(self.proc_free)
        dup.proc_sequence = [list(s) for s in self.proc_sequence]
        dup.controllers = [list(c) for c in self.controllers]
        dup.reconfigurations = list(self.reconfigurations)
        dup.impl = dict(self.impl)
        dup.placement = dict(self.placement)
        dup.start = dict(self.start)
        dup.end = dict(self.end)
        dup.used = self.used
        dup.end_sum = self.end_sum
        dup._makespan = self._makespan
        dup._trail = None  # a fork starts its own recording epoch
        return dup

    # -- undo trail ----------------------------------------------------------

    def trail_mark(self) -> int:
        """Start (or continue) recording mutations; returns a mark that
        :meth:`undo_to` rewinds to."""
        if self._trail is None:
            self._trail = []
        return len(self._trail)

    def trail_depth(self) -> int:
        """Current length of the undo log (0 while not recording)."""
        return 0 if self._trail is None else len(self._trail)

    def trail_clear(self) -> None:
        """Drop the undo log and stop recording (commits the state)."""
        self._trail = None

    def undo_to(self, mark: int) -> None:
        """Rewind every mutation recorded after ``mark`` (LIFO)."""
        trail = self._trail
        if trail is None:
            raise ValueError("undo_to without an active trail")
        while len(trail) > mark:
            entry = trail.pop()
            tag = entry[0]
            if tag == "sw":
                (_, task_id, processor, old_free,
                 old_end_sum, old_makespan) = entry
                self.proc_free[processor] = old_free
                self.proc_sequence[processor].pop()
                del self.impl[task_id]
                del self.placement[task_id]
                del self.start[task_id]
                del self.end[task_id]
                self.end_sum = old_end_sum
                self._makespan = old_makespan
            elif tag == "hw":
                (_, task_id, region_id, old_free, old_loaded,
                 controller, interval, old_end_sum, old_makespan) = entry
                region = self.regions[region_id]
                region.sequence.pop()
                region.free_time = old_free
                region.loaded = old_loaded
                if controller is not None:
                    self.reconfigurations.pop()
                    self.controllers[controller].remove(interval)
                del self.impl[task_id]
                del self.placement[task_id]
                del self.start[task_id]
                del self.end[task_id]
                self.end_sum = old_end_sum
                self._makespan = old_makespan
            else:  # "region"
                _, region_id, old_used, old_counter = entry
                del self.regions[region_id]
                self.used = old_used
                self._region_counter = old_counter

    # -- queries --------------------------------------------------------------

    def ready_time(self, task_id: str) -> float:
        """Earliest data-ready instant given committed predecessors."""
        graph = self.instance.taskgraph
        ready = 0.0
        for pred in graph.predecessors(task_id):
            if pred not in self.end:
                raise ValueError(
                    f"predecessor {pred!r} of {task_id!r} not scheduled yet"
                )
            finish = self.end[pred]
            if self.comm:
                finish += graph.comm_cost(pred, task_id)
            ready = max(ready, finish)
        return ready

    def available_resources(self) -> ResourceVector:
        remaining = {
            r: self.arch.max_res[r] - self.used[r] for r in self.arch.max_res
        }
        return ResourceVector({r: max(0, v) for r, v in remaining.items()})

    def can_create_region(self, demand: ResourceVector) -> bool:
        quantized = self.arch.quantize_region(demand)
        return quantized.fits_in(self.available_resources())

    @property
    def makespan(self) -> float:
        """Max over task ends and controller busy ends — maintained
        incrementally (O(1)); equals the explicit max by monotonicity."""
        return self._makespan

    # -- controller timeline ------------------------------------------------------

    def _controller_slot(self, earliest: float, duration: float) -> tuple[int, float]:
        """Earliest gap of ``duration`` over all controllers at/after
        ``earliest``; returns ``(controller, start)``."""
        best: tuple[float, int] | None = None
        for index, controller in enumerate(self.controllers):
            start = earliest
            for busy_start, busy_end in controller:
                if busy_end <= start:
                    continue
                if busy_start >= start + duration:
                    break  # fits before this busy interval
                start = busy_end
            if best is None or (start, index) < best:
                best = (start, index)
        assert best is not None
        return best[1], best[0]

    def _reserve_controller(self, controller: int, start: float, duration: float) -> None:
        end = start + duration
        insort(self.controllers[controller], (start, end))
        if end > self._makespan:
            self._makespan = end

    # -- placement operations ----------------------------------------------------------

    def create_region(self, demand: ResourceVector) -> RegionState:
        quantized = self.arch.quantize_region(demand)
        if not quantized.fits_in(self.available_resources()):
            raise ValueError("insufficient fabric resources for new region")
        region = RegionState(id=f"RR{self._region_counter}", resources=quantized)
        if self._trail is not None:
            self._trail.append(
                ("region", region.id, self.used, self._region_counter)
            )
        self._region_counter += 1
        self.regions[region.id] = region
        self.used = self.used + quantized
        return region

    def place_sw(self, task_id: str, impl: Implementation, processor: int) -> float:
        """Commit a SW task on a core; returns its finish time."""
        if not impl.is_sw:
            raise ValueError("place_sw needs a SW implementation")
        start = max(self.ready_time(task_id), self.proc_free[processor])
        end = start + impl.time
        if self._trail is not None:
            self._trail.append(
                ("sw", task_id, processor, self.proc_free[processor],
                 self.end_sum, self._makespan)
            )
        self.proc_free[processor] = end
        self.proc_sequence[processor].append(task_id)
        self.impl[task_id] = impl
        self.placement[task_id] = ProcessorPlacement(index=processor)
        self.start[task_id] = start
        self.end[task_id] = end
        self.end_sum += end
        if end > self._makespan:
            self._makespan = end
        return end

    def place_hw(self, task_id: str, impl: Implementation, region_id: str) -> float:
        """Commit a HW task in a region; returns its finish time.

        Inserts the reconfiguration (if a different module is loaded)
        into the earliest controller gap after the region goes idle.
        """
        if not impl.is_hw:
            raise ValueError("place_hw needs a HW implementation")
        region = self.regions[region_id]
        if not impl.resources.fits_in(region.resources):
            raise ValueError(
                f"implementation {impl.name!r} does not fit region {region_id!r}"
            )
        ready = self.ready_time(task_id)
        old_free = region.free_time
        old_loaded = region.loaded
        old_end_sum = self.end_sum
        old_makespan = self._makespan
        reconf_controller: int | None = None
        reconf_interval: tuple[float, float] | None = None
        # A region needs reconfiguration whenever a *different* module is
        # currently loaded.  Offline, "something loaded" and "sequence
        # non-empty" coincide; online projections seed regions whose queue
        # has drained but whose fabric still holds the last module, so the
        # loaded module — not the sequence — is the authoritative signal.
        needs_reconf = region.loaded is not None and not (
            self.module_reuse and region.loaded == impl.name
        )
        if needs_reconf:
            duration = self.arch.reconf_time(region.resources)
            controller, rc_start = self._controller_slot(region.free_time, duration)
            rc_end = rc_start + duration
            self._reserve_controller(controller, rc_start, duration)
            self.reconfigurations.append(
                Reconfiguration(
                    region_id=region_id,
                    ingoing_task=(
                        region.sequence[-1]
                        if region.sequence
                        else f"<live:{region.loaded}>"
                    ),
                    outgoing_task=task_id,
                    start=rc_start,
                    end=rc_end,
                    controller=controller,
                )
            )
            reconf_controller = controller
            reconf_interval = (rc_start, rc_end)
            start = max(ready, rc_end)
        else:
            start = max(ready, region.free_time)
        end = start + impl.time
        if self._trail is not None:
            self._trail.append(
                ("hw", task_id, region_id, old_free, old_loaded,
                 reconf_controller, reconf_interval, old_end_sum, old_makespan)
            )
        region.free_time = end
        region.loaded = impl.name
        region.sequence.append(task_id)
        self.impl[task_id] = impl
        self.placement[task_id] = RegionPlacement(region_id=region_id)
        self.start[task_id] = start
        self.end[task_id] = end
        self.end_sum += end
        if end > self._makespan:
            self._makespan = end
        return end

    # -- lower bound / export --------------------------------------------------------------

    def completion_lower_bound(
        self, min_exe: dict[str, float], topo_order: list[str]
    ) -> float:
        """Optimistic full-completion bound: CPM over unscheduled tasks
        with fastest implementations and unlimited resources."""
        graph = self.instance.taskgraph
        bound = self.makespan
        est: dict[str, float] = {}
        for task_id in topo_order:
            if task_id in self.end:
                est[task_id] = self.end[task_id] - min_exe.get(task_id, 0.0)
                continue
            start = 0.0
            for pred in graph.predecessors(task_id):
                if pred in self.end:
                    finish = self.end[pred]
                else:
                    finish = est[pred] + min_exe[pred]
                if self.comm:
                    finish += graph.comm_cost(pred, task_id)
                start = max(start, finish)
            est[task_id] = start
            bound = max(bound, start + min_exe[task_id])
        return bound

    def to_schedule(self, scheduler: str, metadata: dict | None = None) -> Schedule:
        missing = [t for t in self.instance.taskgraph.task_ids if t not in self.end]
        if missing:
            raise ValueError(f"unscheduled tasks remain: {missing[:5]}")
        tasks = {
            task_id: ScheduledTask(
                task_id=task_id,
                implementation=self.impl[task_id],
                placement=self.placement[task_id],
                start=self.start[task_id],
                end=self.end[task_id],
            )
            for task_id in self.end
        }
        regions = {
            rid: Region(id=rid, resources=state.resources)
            for rid, state in self.regions.items()
            if state.sequence
        }
        return Schedule(
            tasks=tasks,
            regions=regions,
            reconfigurations=sorted(
                self.reconfigurations, key=lambda r: (r.start, r.region_id)
            ),
            scheduler=scheduler,
            metadata=dict(metadata or {}),
        )
