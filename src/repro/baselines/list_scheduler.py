"""List-based greedy scheduler (the [4]-style secondary baseline).

A single-pass earliest-finish-time list scheduler: tasks are ordered by
*upward rank* (critical-path-to-sink length with per-task average
implementation times — the HEFT priority), and each task greedily takes
the (implementation, placement) option with the earliest finish time on
the constructive state of :mod:`repro.baselines.partial`.

It shares IS-1's myopia but not its lookahead bound, making it the
cheapest baseline in the suite; the ablation benchmarks use it to
separate "greedy EFT" from "greedy with completion bound" (IS-1).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field

from ..model import Instance, Schedule
from .isk import _Option
from .partial import PartialSchedule

__all__ = ["ListResult", "list_schedule", "upward_ranks"]


@dataclass
class ListResult:
    """Outcome of a list-scheduler run.

    Carries the same ``makespan`` / ``total_time`` / ``feasible``
    surface as :class:`~repro.core.scheduler.PAResult` and
    :class:`~repro.baselines.isk.ISKResult`.
    """

    schedule: Schedule
    elapsed: float
    stats: dict = field(default_factory=dict)
    feasible: bool = True

    @property
    def makespan(self) -> float:
        return self.schedule.makespan

    @property
    def total_time(self) -> float:
        return self.elapsed


def upward_ranks(instance: Instance) -> dict[str, float]:
    """HEFT upward rank with mean implementation times."""
    graph = instance.taskgraph
    mean_exe = {
        t.id: sum(i.time for i in t.implementations) / len(t.implementations)
        for t in graph
    }
    rank: dict[str, float] = {}
    for task_id in reversed(graph.topological_order()):
        best_succ = max(
            (
                rank[s] + graph.comm_cost(task_id, s)
                for s in graph.successors(task_id)
            ),
            default=0.0,
        )
        rank[task_id] = mean_exe[task_id] + best_succ
    return rank


def list_schedule(
    instance: Instance,
    communication_overhead: bool = False,
    enable_module_reuse: bool = True,
) -> ListResult:
    """Greedy EFT over the upward-rank order."""
    t0 = _time.perf_counter()
    graph = instance.taskgraph
    ranks = upward_ranks(instance)
    # Priority order must stay a valid topological order: sort by
    # (-rank) within the constraint, which the classic HEFT order
    # guarantees because rank(pred) > rank(succ) along every arc
    # (strictly, as execution times are positive).
    order = sorted(graph.task_ids, key=lambda t: (-ranks[t], t))

    state = PartialSchedule(
        instance,
        communication_overhead=communication_overhead,
        enable_module_reuse=enable_module_reuse,
    )
    for task_id in order:
        task = graph.task(task_id)
        best: tuple[float, float, str, _Option] | None = None
        for impl in task.sw_implementations:
            for proc in range(state.arch.processors):
                option = _Option(impl=impl, target=f"proc:{proc}")
                finish = max(state.ready_time(task_id), state.proc_free[proc]) + impl.time
                key = (finish, 0.0, impl.name, option)
                if best is None or key[:3] < best[:3]:
                    best = key
        for impl in task.hw_implementations:
            for region in state.regions.values():
                if not impl.resources.fits_in(region.resources):
                    continue
                option = _Option(impl=impl, target=f"region:{region.id}")
                finish = _hw_finish(state, task_id, impl, region.id)
                key = (finish, float(region.resources.total()), impl.name, option)
                if best is None or key[:3] < best[:3]:
                    best = key
            if state.can_create_region(impl.resources):
                option = _Option(impl=impl, target="new")
                finish = state.ready_time(task_id) + impl.time
                key = (finish, float(impl.resources.total()), impl.name, option)
                if best is None or key[:3] < best[:3]:
                    best = key
        if best is None:
            raise RuntimeError(f"task {task_id!r} has no feasible option")
        option = best[3]
        if option.target.startswith("proc:"):
            state.place_sw(task_id, option.impl, int(option.target[5:]))
        elif option.target == "new":
            region = state.create_region(option.impl.resources)
            state.place_hw(task_id, option.impl, region.id)
        else:
            state.place_hw(task_id, option.impl, option.target[7:])

    schedule = state.to_schedule(scheduler="LIST")
    return ListResult(schedule=schedule, elapsed=_time.perf_counter() - t0)


def _hw_finish(state: PartialSchedule, task_id: str, impl, region_id: str) -> float:
    """Finish-time preview of placing ``task_id`` in ``region_id``
    (same semantics as :meth:`PartialSchedule.place_hw`, no mutation)."""
    region = state.regions[region_id]
    ready = state.ready_time(task_id)
    needs_reconf = region.sequence and not (
        state.module_reuse and region.loaded == impl.name
    )
    if needs_reconf:
        duration = state.arch.reconf_time(region.resources)
        _, rc_start = state._controller_slot(region.free_time, duration)
        start = max(ready, rc_start + duration)
    else:
        start = max(ready, region.free_time)
    return start + impl.time
