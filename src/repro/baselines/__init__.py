"""Baseline schedulers: IS-k (reference [6]) and a greedy list scheduler."""

from .exhaustive import exhaustive_schedule
from .isk import ISKOptions, ISKResult, ISKScheduler, isk_schedule
from .list_scheduler import ListResult, list_schedule, upward_ranks
from .partial import PartialSchedule, RegionState

__all__ = [
    "exhaustive_schedule",
    "ISKOptions",
    "ISKResult",
    "ISKScheduler",
    "isk_schedule",
    "ListResult",
    "list_schedule",
    "upward_ranks",
    "PartialSchedule",
    "RegionState",
]
