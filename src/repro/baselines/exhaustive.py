"""Exhaustive constructive scheduler — the exact reference for tiny
instances.

Runs the IS-k machinery with a single window covering the whole graph,
no branch cap and (by default) no node budget: an exact branch-and-
bound over the *entire* constructive decision space (implementation x
placement per task, processed in the deterministic topological order,
with greedy left-justified timing).  Within that space it is optimal,
which yields the invariant the test suite leans on:

* ``exhaustive <= IS-k`` for every k (IS-k explores a subset of the
  same tree, since both fix the identical processing order).

Neither PA nor LIST is bounded by it: LIST processes tasks in HEFT
rank order (a different linear extension of the DAG), and PA's
window-based region insertion can interleave tasks in orders the
constructive tree cannot express.  Measuring how often they beat the
constructive optimum is itself informative (see the optimality-gap
bench).

Complexity is exponential; keep instances at <= ~8 tasks, or pass a
``node_limit`` to degrade to anytime-best.
"""

from __future__ import annotations

from ..model import Instance
from .isk import ISKOptions, ISKResult, ISKScheduler

__all__ = ["exhaustive_schedule"]


def exhaustive_schedule(
    instance: Instance,
    node_limit: int | None = None,
    enable_module_reuse: bool = True,
    communication_overhead: bool = False,
    engine: str = "trail",
    jobs: int = 1,
) -> ISKResult:
    """Exact search over the constructive decision space (see above)."""
    n = len(instance.taskgraph)
    options = ISKOptions(
        k=max(1, n),
        branch_cap=10**9,
        node_limit=node_limit if node_limit is not None else 10**9,
        enable_module_reuse=enable_module_reuse,
        communication_overhead=communication_overhead,
        engine=engine,
        jobs=jobs,
    )
    result = ISKScheduler(options).schedule(instance)
    result.schedule.scheduler = "EXHAUSTIVE"
    return result
