"""Exact Pareto-front extraction with deterministic tie handling.

All objectives are minimized.  ``a`` dominates ``b`` when ``a`` is no
worse on every objective and strictly better on at least one — the
standard strong-dominance relation of multi-objective optimization
(cf. the partitioning/scheduling/floorplanning trade-off studies in
arXiv 1803.03748 and the power/latency fronts of arXiv 2311.11015).

Ties are deterministic: points with *identical* objective vectors
collapse to the lowest input index, so the front never depends on dict
ordering or thread arrival order.  The extraction is a lex-sort
skyline — sort by ``(vector, index)``, keep a point iff no current
front member dominates it.  Checking only front members is sound
because dominance is transitive: any dominator of a candidate is
either on the front or itself dominated by a front member that (by
transitivity) also dominates the candidate.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["dominates", "pareto_front"]


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True iff ``a`` dominates ``b`` (minimize all objectives)."""
    if len(a) != len(b):
        raise ValueError(f"objective arity mismatch: {len(a)} vs {len(b)}")
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


def pareto_front(points: Sequence[Sequence[float]]) -> list[int]:
    """Indices of the non-dominated points, sorted ascending.

    Duplicate objective vectors keep only the lowest index — the
    deterministic tie rule.  Empty input yields an empty front.
    """
    order = sorted(range(len(points)), key=lambda i: (tuple(points[i]), i))
    front: list[int] = []
    prev: tuple | None = None
    for i in order:
        vec = tuple(points[i])
        if vec == prev:
            continue  # exact duplicate — lower index already decided
        prev = vec
        if not any(dominates(points[j], vec) for j in front):
            front.append(i)
    return sorted(front)
