"""Seeded WCET perturbation for robustness smoke tests.

Mirrors the Monte-Carlo robustness pattern of the MCC tooling: jitter
every implementation's execution time by a seeded uniform factor in
``[1 - fraction, 1 + fraction]`` and re-run the analysis, asserting
the output (here: the Pareto front's makespans) drifts no more than
proportionally.  The perturbation goes through the instance's dict
round-trip so the result is a fully independent canonical instance —
its ``content_hash`` differs, so perturbed runs never collide with
the pristine instance in the result store.
"""

from __future__ import annotations

import random

from ..model.instance import Instance

__all__ = ["perturb_wcets"]


def perturb_wcets(
    instance: Instance, fraction: float = 0.1, seed: int = 0
) -> Instance:
    """A copy of ``instance`` with every implementation time jittered.

    Deterministic for a given ``seed``; times are rounded to 3
    decimals (the model's canonical time resolution) and floored at a
    strictly positive epsilon so a 100% downward swing can never
    produce a zero-length task.
    """
    if not 0.0 <= fraction < 1.0:
        raise ValueError(f"fraction must be in [0, 1), got {fraction}")
    rng = random.Random(seed)
    payload = instance.to_dict()
    for task in payload["taskgraph"]["tasks"]:
        for impl in task["implementations"]:
            factor = 1.0 + rng.uniform(-fraction, fraction)
            impl["time"] = max(round(impl["time"] * factor, 3), 0.001)
    payload["name"] = f"{payload['name']}-perturbed-s{seed}"
    return Instance.from_dict(payload)
