"""The sweep engine: dedup → store-first → warm chains → Pareto front.

Three stacked perf layers make an N-point sweep cost far less than N
independent solves:

1. **Pre-dispatch dedup** — grid cells whose requests canonicalize to
   the same ``cache_key`` collapse to one solve before anything is
   queued (cells differing only in ignored axes — seeds for unseeded
   backends, energy caps — are free).  With a
   :class:`~repro.engine.ResultStore`, surviving keys resolve
   store-first, so a re-sweep after a grid refinement pays only for
   the delta.
2. **Cross-point warm starts** — cells sharing a fabric (same
   floorplanner architecture signature) form a *chain* solved serially
   in one worker around one shared :class:`Floorplanner`, so a
   feasibility verdict at budget B answers dominated queries from
   every other cell on that fabric.  IS-k cells on the same instance
   are chained in increasing-k order, each seeding the next cell's
   ``incumbent_hint`` from its makespan — result-neutral by the
   proof-or-rerun protocol (DESIGN.md § 15).
3. **Deterministic parallel drain** — chains fan out over the PR-2
   pool; the reduction walks grid indices in order, so the report's
   :meth:`SweepReport.canonical_payload` is bit-identical for any
   ``jobs`` (asserted by ``benchmarks/bench_explore.py``).

Warm starts are execution context: hints and shared planners never
enter a cache key, and the *decisions* of every outcome are identical
to an independent solve.  Search-provenance metadata (IS-k node
counts, planner cache stats) may differ — see DESIGN.md § 15 for the
purity caveat.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field

from ..analysis.parallel import ParallelItemFailure, parallel_map
from ..engine import ResultStore, ScheduleOutcome, ScheduleRequest, get_backend
from ..model.power import EnergyBreakdown, energy_breakdown
from .grid import GridPoint, GridSpec, expand_grid
from .pareto import pareto_front

__all__ = ["SweepRecord", "SweepReport", "run_sweep", "OBJECTIVES"]

OBJECTIVES = ("makespan", "area", "energy")

_HINT_STAT_KEYS = ("hint_windows", "hint_pruned", "hint_reruns")
_PLANNER_STAT_KEYS = (
    "queries",
    "cache_hits",
    "dominance_hits",
    "candidate_memo_hits",
)


@dataclass
class SweepRecord:
    """One grid cell's resolved outcome plus its objective vector."""

    index: int
    label: str
    algorithm: str
    fabric_scale: float
    rec_freq: float | None
    region_budget: int | None
    energy_cap_uj: float | None
    seed: int | None
    fleet: str | None
    content_hash: str | None
    source: str  # "executed" | "store" | "dedup" | "infeasible" | "failed"
    feasible: bool
    within_cap: bool
    makespan: float | None = None
    area: float | None = None
    energy_uj: float | None = None
    backend: str | None = None
    elapsed: float = 0.0
    on_front: bool = False
    error: str | None = None

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "label": self.label,
            "algorithm": self.algorithm,
            "fabric_scale": self.fabric_scale,
            "rec_freq": self.rec_freq,
            "region_budget": self.region_budget,
            "energy_cap_uj": self.energy_cap_uj,
            "seed": self.seed,
            "fleet": self.fleet,
            "content_hash": self.content_hash,
            "source": self.source,
            "feasible": self.feasible,
            "within_cap": self.within_cap,
            "makespan": self.makespan,
            "area": self.area,
            "energy_uj": self.energy_uj,
            "backend": self.backend,
            "elapsed": self.elapsed,
            "on_front": self.on_front,
            "error": self.error,
        }


_CSV_COLUMNS = (
    "index",
    "label",
    "algorithm",
    "fabric_scale",
    "rec_freq",
    "region_budget",
    "energy_cap_uj",
    "seed",
    "fleet",
    "content_hash",
    "source",
    "feasible",
    "within_cap",
    "makespan",
    "area",
    "energy_uj",
    "backend",
    "on_front",
    "error",
)


@dataclass
class SweepReport:
    """Everything a sweep produced, serializable and renderable."""

    spec: dict
    objectives: list
    records: list = field(default_factory=list)
    front: list = field(default_factory=list)  # grid indices, ascending
    total_points: int = 0
    unique_requests: int = 0
    dedup_collapsed: int = 0
    store_hits: int = 0
    executed: int = 0
    infeasible: int = 0
    chains: int = 0
    jobs: int = 1
    elapsed: float = 0.0
    store_stats: dict | None = None
    planner_stats: dict = field(default_factory=dict)
    hint_stats: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "spec": self.spec,
            "objectives": list(self.objectives),
            "records": [r.to_dict() for r in self.records],
            "front": list(self.front),
            "total_points": self.total_points,
            "unique_requests": self.unique_requests,
            "dedup_collapsed": self.dedup_collapsed,
            "store_hits": self.store_hits,
            "executed": self.executed,
            "infeasible": self.infeasible,
            "chains": self.chains,
            "jobs": self.jobs,
            "elapsed": self.elapsed,
            "store_stats": self.store_stats,
            "planner_stats": self.planner_stats,
            "hint_stats": self.hint_stats,
        }

    def canonical_payload(self) -> dict:
        """The deterministic core — wall-clock and cache-locality
        fields stripped, so serial and ``--jobs N`` runs compare
        bit-identical (the bench gate)."""
        payload = self.to_dict()
        for volatile in ("elapsed", "jobs", "planner_stats", "store_stats"):
            payload.pop(volatile, None)
        for record in payload["records"]:
            record.pop("elapsed", None)
        return payload

    @property
    def hit_rate(self) -> float:
        return self.store_hits / self.unique_requests if self.unique_requests else 0.0

    def render(self) -> str:
        lines = [
            f"explore: {self.total_points} points -> "
            f"{self.unique_requests} unique requests "
            f"({self.dedup_collapsed} collapsed, {self.infeasible} infeasible) "
            f"— {self.store_hits} store hits, {self.executed} executed "
            f"in {self.elapsed:.2f}s",
            f"front ({','.join(self.objectives)}): "
            f"{len(self.front)} points: {self.front}",
        ]
        for record in self.records:
            if record.on_front:
                objs = ", ".join(
                    f"{name}={getattr(record, _OBJECTIVE_FIELDS[name]):g}"
                    for name in self.objectives
                )
                lines.append(f"  #{record.index} {record.label}: {objs}")
        if self.hint_stats.get("hint_windows"):
            lines.append(
                "warm starts: "
                f"{self.hint_stats['hint_windows']} hinted windows, "
                f"{self.hint_stats['hint_pruned']} hint prunes, "
                f"{self.hint_stats['hint_reruns']} verification reruns"
            )
        if self.planner_stats.get("queries"):
            lines.append(
                "floorplanner: "
                f"{self.planner_stats['queries']} queries, "
                f"{self.planner_stats.get('cache_hits', 0)} cache hits, "
                f"{self.planner_stats.get('dominance_hits', 0)} dominance hits"
            )
        return "\n".join(lines)

    def write_csv(self, path) -> None:
        import csv

        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(_CSV_COLUMNS)
            for record in self.records:
                row = record.to_dict()
                writer.writerow(
                    [
                        "" if row[col] is None else row[col]
                        for col in _CSV_COLUMNS
                    ]
                )

    def write_html(self, path) -> None:
        with open(path, "w") as handle:
            handle.write(render_html(self))


_OBJECTIVE_FIELDS = {
    "makespan": "makespan",
    "area": "area",
    "energy": "energy_uj",
}


def _chain_sort_key(point: GridPoint) -> tuple:
    """Within-chain solve order: non-IS-k cells by grid index first,
    then IS-k cells by (k, grid index) so hints flow small-k -> big-k."""
    algorithm = point.algorithm
    if algorithm.startswith("is-"):
        return (1, int(algorithm[3:]), point.index)
    return (0, 0, point.index)


def _isk_depth(algorithm: str) -> int | None:
    if algorithm.startswith("is-") and algorithm[3:].isdigit():
        return int(algorithm[3:])
    return None


def _solve_chain(payload: tuple) -> tuple:
    """Pool worker: solve one fabric chain serially with shared warmth.

    ``payload`` is ``(items, planner_entries, warm_starts)`` where each
    item is ``(key, request, wants_planner, isk_depth, instance_hash)``
    in chain order.  Returns ``(results, planner_entries, planner_stats)``
    with one ``(key, outcome_dict | None, elapsed, error)`` per item.
    Module-level so the analysis pool can pickle it; deterministic
    because the chain is solved serially in a fixed order.

    With ``warm_starts`` off every cell is a genuinely independent
    solve: a fresh floorplanner per cell, no absorbed entries, no
    hints — the baseline the bench compares warm chains against.
    """
    items, planner_entries, warm_starts = payload
    planner = None
    results = []
    stats_totals: dict = {}
    hint_by_instance: dict = {}
    for key, request, wants_planner, isk_depth, instance_hash in items:
        t0 = _time.perf_counter()
        try:
            backend = get_backend(request.algorithm)
            kwargs = {}
            if wants_planner:
                if planner is None or not warm_starts:
                    from ..floorplan import Floorplanner

                    if planner is not None:
                        for stat, value in planner.stats.items():
                            stats_totals[stat] = (
                                stats_totals.get(stat, 0) + value
                            )
                    planner = Floorplanner.for_architecture(
                        request.instance.architecture
                    )
                    if planner_entries and warm_starts:
                        planner.absorb(planner_entries)
                kwargs["floorplanner"] = planner
            if warm_starts and isk_depth is not None:
                hint = hint_by_instance.get(instance_hash)
                if hint is not None:
                    kwargs["incumbent_hint"] = hint
            outcome = backend.run(request, **kwargs)
            if isk_depth is not None and outcome.feasible:
                prior = hint_by_instance.get(instance_hash)
                if prior is None or outcome.makespan < prior:
                    hint_by_instance[instance_hash] = outcome.makespan
            results.append(
                (key, outcome.to_dict(), _time.perf_counter() - t0, None)
            )
        except Exception as exc:  # noqa: BLE001 — reported per-cell
            results.append((key, None, _time.perf_counter() - t0, str(exc)))
    exported = (
        planner.export_entries() if planner is not None and warm_starts else []
    )
    if planner is not None:
        for stat, value in planner.stats.items():
            stats_totals[stat] = stats_totals.get(stat, 0) + value
    return (results, exported, stats_totals)


def _failure_message(failure: ParallelItemFailure) -> str:
    return f"{failure.phase}: {failure.error} (after {failure.attempts} attempts)"


def _fabric_signature(request: ScheduleRequest) -> tuple | None:
    """The floorplanner-sharing key, or None for solo cells (fleets,
    backends that never consult a planner)."""
    if request.algorithm.startswith("fleet-"):
        return None
    # is-k / list / exhaustive never consult the planner, but chaining
    # them by architecture keeps IS-k hint chains in one worker; the
    # planner itself is built lazily only when a pa/pa-r cell asks.
    from ..floorplan.floorplanner import _architecture_signature

    return _architecture_signature(request.instance.architecture)


def _point_area(point: GridPoint) -> float:
    request = point.request
    if request.algorithm.startswith("fleet-"):
        return float(
            sum(
                sum(device["architecture"]["max_res"].values())
                for device in request.options["fleet"]["devices"]
            )
        )
    return float(sum(request.instance.architecture.max_res.values()))


def _point_energy_uj(point: GridPoint, outcome: ScheduleOutcome) -> float:
    request = point.request
    if request.algorithm.startswith("fleet-"):
        fleet_payload = (outcome.metadata or {}).get("fleet")
        if fleet_payload and "energy" in fleet_payload:
            energy = fleet_payload["energy"]
            if not isinstance(energy, EnergyBreakdown):
                energy = EnergyBreakdown.from_dict(energy)
            return energy.total_j * 1e6
        return 0.0
    arch = request.instance.architecture
    if arch.power is None:
        return 0.0
    return energy_breakdown(outcome.schedule, arch, arch.power).total_j * 1e6


def run_sweep(
    instance,
    spec: GridSpec,
    store: ResultStore | None = None,
    jobs: int = 1,
    objectives=("makespan", "area", "energy"),
    warm_starts: bool = True,
    planner_cache: dict | None = None,
    progress=None,
    timeout: float | None = None,
) -> SweepReport:
    """Expand ``spec`` over ``instance``, drain it, extract the front.

    ``planner_cache`` (fabric signature -> exported planner entries)
    carries floorplan warmth across successive sweeps in one process;
    pass the same dict again to re-seed the chains.  ``objectives`` is
    an ordered subset of ``("makespan", "area", "energy")``.
    """
    objectives = list(objectives)
    for name in objectives:
        if name not in OBJECTIVES:
            raise ValueError(
                f"unknown objective {name!r}; valid: {list(OBJECTIVES)}"
            )
    if not objectives:
        raise ValueError("need at least one objective")

    t0 = _time.perf_counter()
    points = expand_grid(instance, spec)
    stats_before = dict(store.stats) if store is not None else None

    # Layer 1a: pre-dispatch dedup — one representative per cache key.
    representative: dict[str, int] = {}
    for point in points:
        if point.request is None:
            continue
        key = point.request.cache_key()
        representative.setdefault(key, point.index)
    by_index = {point.index: point for point in points}

    # Layer 1b: store-first resolution of the unique keys.
    outcomes: dict[str, ScheduleOutcome] = {}
    sources: dict[str, str] = {}
    errors: dict[str, str] = {}
    elapsed_by_key: dict[str, float] = {}
    misses: list[str] = []
    for key, rep_index in representative.items():
        request = by_index[rep_index].request
        hit = store.get(request) if store is not None else None
        if hit is not None:
            outcomes[key] = hit
            sources[key] = "store"
        else:
            misses.append(key)

    # Layer 2: group misses into warm chains by fabric signature.
    chains: dict[object, list[GridPoint]] = {}
    solo_count = 0
    for key in misses:
        point = by_index[representative[key]]
        signature = _fabric_signature(point.request)
        if signature is None:
            chains[("solo", solo_count)] = [point]
            solo_count += 1
        else:
            chains.setdefault(("fabric", signature), []).append(point)
    chain_keys = sorted(chains, key=repr)
    payloads = []
    for chain_key in chain_keys:
        members = sorted(chains[chain_key], key=_chain_sort_key)
        items = []
        for point in members:
            request = point.request
            wants_planner = request.algorithm in (
                "pa",
                "pa-r",
            ) and request.options.get("floorplan", True)
            items.append(
                (
                    request.cache_key(),
                    request,
                    wants_planner,
                    _isk_depth(request.algorithm),
                    request.instance.content_hash(),
                )
            )
        entries = (
            planner_cache.get(chain_key[1], [])
            if planner_cache is not None and chain_key[0] == "fabric"
            else []
        )
        payloads.append((items, entries, warm_starts))

    # Layer 3: parallel drain, deterministic reduction.  parallel_map
    # hands ``progress`` the raw worker result, so wrap it into a
    # per-chain summary line instead of dumping chain payloads.
    chain_progress = None
    if progress is not None:
        done_chains = [0]

        def chain_progress(result):
            done_chains[0] += 1
            if isinstance(result, ParallelItemFailure):
                status = f"FAILED: {_failure_message(result)}"
            else:
                solved = sum(1 for _k, _o, _e, err in result[0] if err is None)
                status = f"{solved}/{len(result[0])} point(s) solved"
            progress(
                f"chain {done_chains[0]}/{len(payloads)}: {status}"
            )

    chain_results = parallel_map(
        _solve_chain,
        payloads,
        jobs=jobs,
        progress=chain_progress,
        timeout=timeout,
    )
    planner_stats_total: dict = {}
    for chain_key, payload, result in zip(chain_keys, payloads, chain_results):
        if isinstance(result, ParallelItemFailure):
            for key, _request, _wp, _k, _ih in payload[0]:
                errors[key] = _failure_message(result)
                sources[key] = "failed"
            continue
        results, exported, chain_planner_stats = result
        for key, outcome_dict, elapsed, error in results:
            elapsed_by_key[key] = elapsed
            if error is not None:
                errors[key] = error
                sources[key] = "failed"
                continue
            outcome = ScheduleOutcome.from_dict(outcome_dict)
            outcomes[key] = outcome
            sources[key] = "executed"
            if store is not None:
                store.put(by_index[representative[key]].request, outcome)
        if planner_cache is not None and chain_key[0] == "fabric" and exported:
            planner_cache[chain_key[1]] = exported
        for stat in _PLANNER_STAT_KEYS:
            if stat in chain_planner_stats:
                planner_stats_total[stat] = planner_stats_total.get(
                    stat, 0
                ) + chain_planner_stats[stat]

    # Build records in grid-index order (the deterministic reduction).
    report = SweepReport(
        spec=spec.to_dict(),
        objectives=objectives,
        total_points=len(points),
        unique_requests=len(representative),
        dedup_collapsed=sum(1 for p in points if p.request is not None)
        - len(representative),
        infeasible=sum(1 for p in points if p.request is None),
        chains=len(chain_keys),
        jobs=jobs,
    )
    hint_totals = {stat: 0 for stat in _HINT_STAT_KEYS}
    for point in points:
        if point.request is None:
            report.records.append(
                SweepRecord(
                    index=point.index,
                    label=point.label(),
                    algorithm=point.algorithm,
                    fabric_scale=point.fabric_scale,
                    rec_freq=point.rec_freq,
                    region_budget=point.region_budget,
                    energy_cap_uj=point.energy_cap_uj,
                    seed=point.seed,
                    fleet=point.fleet,
                    content_hash=None,
                    source="infeasible",
                    feasible=False,
                    within_cap=False,
                    error=point.error,
                )
            )
            continue
        key = point.request.cache_key()
        rep_index = representative[key]
        source = sources.get(key, "failed")
        if point.index != rep_index:
            source = "dedup"
        outcome = outcomes.get(key)
        record = SweepRecord(
            index=point.index,
            label=point.label(),
            algorithm=point.algorithm,
            fabric_scale=point.fabric_scale,
            rec_freq=point.rec_freq,
            region_budget=point.region_budget,
            energy_cap_uj=point.energy_cap_uj,
            seed=point.seed,
            fleet=point.fleet,
            content_hash=key,
            source=source,
            feasible=outcome.feasible if outcome is not None else False,
            within_cap=True,
            elapsed=elapsed_by_key.get(key, 0.0)
            if point.index == rep_index
            else 0.0,
            error=errors.get(key),
        )
        if outcome is not None:
            record.backend = outcome.backend
            record.makespan = outcome.makespan
            record.area = _point_area(point)
            record.energy_uj = round(_point_energy_uj(point, outcome), 6)
            if point.energy_cap_uj is not None:
                record.within_cap = record.energy_uj <= point.energy_cap_uj
            if sources.get(key) == "executed":
                stats = (outcome.metadata or {}).get("stats") or {}
                if point.index == rep_index:
                    for stat in _HINT_STAT_KEYS:
                        hint_totals[stat] += int(stats.get(stat, 0))
        report.records.append(record)

    report.store_hits = sum(1 for s in sources.values() if s == "store")
    report.executed = sum(1 for s in sources.values() if s == "executed")
    report.hint_stats = hint_totals
    report.planner_stats = planner_stats_total
    if store is not None and stats_before is not None:
        after = store.stats
        report.store_stats = {
            name: after.get(name, 0) - stats_before.get(name, 0)
            for name in ("hits", "misses", "writes", "evictions")
        }

    # Pareto front over feasible, cap-respecting records.
    candidates = [
        record
        for record in report.records
        if record.feasible and record.within_cap and record.makespan is not None
    ]
    vectors = [
        [getattr(record, _OBJECTIVE_FIELDS[name]) for name in objectives]
        for record in candidates
    ]
    for position in pareto_front(vectors):
        candidates[position].on_front = True
    report.front = [record.index for record in report.records if record.on_front]
    report.elapsed = _time.perf_counter() - t0
    return report


def render_html(report: SweepReport) -> str:
    """A dependency-free single-file HTML report: an SVG scatter of
    the first two objectives with the front highlighted, plus the
    full record table."""
    xs_name = report.objectives[0]
    ys_name = (
        report.objectives[1] if len(report.objectives) > 1 else report.objectives[0]
    )
    xf, yf = _OBJECTIVE_FIELDS[xs_name], _OBJECTIVE_FIELDS[ys_name]
    plotted = [
        r
        for r in report.records
        if r.feasible and r.within_cap and getattr(r, xf) is not None
    ]
    width, height, pad = 640, 420, 50

    def _scale(values, span):
        lo, hi = min(values), max(values)
        if hi == lo:
            hi = lo + 1.0
        return lambda v: pad + (v - lo) / (hi - lo) * (span - 2 * pad)

    svg_points = []
    if plotted:
        sx = _scale([getattr(r, xf) for r in plotted], width)
        sy = _scale([getattr(r, yf) for r in plotted], height)
        front = sorted(
            (r for r in plotted if r.on_front), key=lambda r: getattr(r, xf)
        )
        if len(front) > 1:
            path = " ".join(
                f"{sx(getattr(r, xf)):.1f},{height - sy(getattr(r, yf)):.1f}"
                for r in front
            )
            svg_points.append(
                f'<polyline points="{path}" fill="none" '
                f'stroke="#c33" stroke-width="1.5" stroke-dasharray="4 3"/>'
            )
        for r in plotted:
            cx = sx(getattr(r, xf))
            cy = height - sy(getattr(r, yf))
            color = "#c33" if r.on_front else "#36c"
            radius = 5 if r.on_front else 3
            svg_points.append(
                f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="{radius}" '
                f'fill="{color}"><title>#{r.index} {_escape(r.label)}: '
                f"{xs_name}={getattr(r, xf):g}, {ys_name}={getattr(r, yf):g}"
                f"</title></circle>"
            )
    rows = []
    for r in report.records:
        cells = "".join(
            f"<td>{_escape('' if v is None else v)}</td>"
            for v in (
                r.index,
                r.label,
                r.source,
                r.feasible,
                r.within_cap,
                r.makespan,
                r.area,
                r.energy_uj,
                "front" if r.on_front else "",
                r.error or "",
            )
        )
        style = ' style="background:#fee"' if r.on_front else ""
        rows.append(f"<tr{style}>{cells}</tr>")
    summary = _escape(report.render()).replace("\n", "<br>")
    return f"""<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>repro explore report</title>
<style>body{{font-family:sans-serif;margin:2em}}table{{border-collapse:collapse}}
td,th{{border:1px solid #ccc;padding:2px 8px;font-size:12px}}</style></head>
<body><h1>Design-space exploration</h1>
<p>{summary}</p>
<svg width="{width}" height="{height}" style="border:1px solid #ccc">
<text x="{width / 2}" y="{height - 8}" text-anchor="middle" font-size="12">{xs_name}</text>
<text x="14" y="{height / 2}" text-anchor="middle" font-size="12"
 transform="rotate(-90 14 {height / 2})">{ys_name}</text>
{''.join(svg_points)}
</svg>
<h2>Records</h2>
<table><tr><th>#</th><th>label</th><th>source</th><th>feasible</th>
<th>within cap</th><th>makespan</th><th>area</th><th>energy µJ</th>
<th>front</th><th>error</th></tr>
{''.join(rows)}</table>
</body></html>
"""


def _escape(value) -> str:
    return (
        str(value)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
    )
