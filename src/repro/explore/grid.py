"""Grid specs: the constraint space a sweep explores.

A :class:`GridSpec` is the cartesian product of up to seven axes —
algorithms, fabric scales, reconfiguration frequencies, region
budgets, energy caps, seeds, and fleet presets.  :func:`expand_grid`
enumerates it in a *fixed* order (itertools.product over the axes in
declaration order) and turns every cell into a canonical
:class:`~repro.engine.ScheduleRequest`, so a grid index identifies the
same design point on every run — the foundation of the sweep engine's
deterministic reduction.

Two hygiene rules keep the dedup layer honest:

* :func:`transform_instance` returns the input instance *unchanged*
  (same object, same bytes, same ``content_hash``) when the transform
  is the identity, so sweep cells at scale 1.0 share store entries
  with ordinary ``repro schedule`` runs; and scaled instances keep the
  original name/metadata, so two scales that floor to the same
  ``max_res`` canonicalize to the same hash and collapse.
* Axes a backend ignores never enter its request (seeds only reach
  seeded backends; energy caps are post-filters, never options), so
  cells differing only in ignored axes dedup to one solve.

A cell whose transformed instance fails :meth:`Instance.validate`
(e.g. a fabric scaled below the largest hw implementation) becomes an
*infeasible* :class:`GridPoint`: no request, no dispatch, excluded
from the Pareto front but kept in the CSV with ``feasible=false``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace

from ..engine import ScheduleRequest
from ..model.architecture import Architecture
from ..model.instance import Instance

__all__ = [
    "ExploreError",
    "GridSpec",
    "GridPoint",
    "expand_grid",
    "transform_instance",
]


class ExploreError(ValueError):
    """Invalid grid spec or sweep configuration."""


_SEEDED_ALGORITHMS = ("pa-r",)  # algorithms whose request carries the seed axis


def _as_list(value) -> list:
    if value is None:
        return [None]
    if isinstance(value, (list, tuple)):
        return list(value)
    return [value]


@dataclass
class GridSpec:
    """Declarative sweep space.  Every axis defaults to the singleton
    identity, so ``GridSpec()`` is one plain design point.

    ``fleets`` entries are comma-separated device-preset lists (e.g.
    ``"zedboard,artix-small"``) handed to
    :func:`repro.fleet.build_fleet`; ``None`` means single-device.
    ``energy_caps`` are post-filter bounds in µJ — they never enter a
    request, so cap-only-differing cells dedup to one solve.
    ``base_options`` maps an algorithm pattern (exact name, ``is-*``
    style prefix wildcard, or ``*``) to extra request options.
    """

    algorithms: list = field(default_factory=lambda: ["pa"])
    fabric_scales: list = field(default_factory=lambda: [1.0])
    rec_freqs: list = field(default_factory=lambda: [None])
    region_budgets: list = field(default_factory=lambda: [None])
    energy_caps: list = field(default_factory=lambda: [None])
    seeds: list = field(default_factory=lambda: [None])
    fleets: list = field(default_factory=lambda: [None])
    pa_r_iterations: int = 4
    fleet_comm_penalty: float = 0.0
    base_options: dict = field(default_factory=dict)

    _FIELDS = (
        "algorithms",
        "fabric_scales",
        "rec_freqs",
        "region_budgets",
        "energy_caps",
        "seeds",
        "fleets",
        "pa_r_iterations",
        "fleet_comm_penalty",
        "base_options",
    )
    _AXES = _FIELDS[:7]

    def __post_init__(self) -> None:
        for name in self._AXES:
            setattr(self, name, _as_list(getattr(self, name)))
        self.validate()

    @classmethod
    def from_dict(cls, data: dict) -> "GridSpec":
        unknown = set(data) - set(cls._FIELDS)
        if unknown:
            raise ExploreError(
                f"unknown grid key(s) {sorted(unknown)}; valid: "
                f"{sorted(cls._FIELDS)}"
            )
        return cls(**data)

    def to_dict(self) -> dict:
        return {name: getattr(self, name) for name in self._FIELDS}

    def validate(self) -> None:
        if not self.algorithms:
            raise ExploreError("algorithms axis is empty")
        for axis in self._AXES:
            if not getattr(self, axis):
                raise ExploreError(f"{axis} axis is empty")
        if any(b is not None for b in self.region_budgets):
            bad = [a for a in self.algorithms if a not in ("pa", "pa-r")]
            if bad:
                raise ExploreError(
                    f"region_budgets (max_shrink_iterations) only apply to "
                    f"pa/pa-r, not {bad}"
                )
        if any(f is not None for f in self.fleets):
            if list(self.fabric_scales) != [1.0] or list(self.rec_freqs) != [
                None
            ]:
                raise ExploreError(
                    "fleets combine preset devices with their own fabrics; "
                    "fabric_scales/rec_freqs must stay at the identity"
                )

    @property
    def size(self) -> int:
        n = 1
        for axis in self._AXES:
            n *= len(getattr(self, axis))
        return n

    def options_for(self, algorithm: str) -> dict:
        """Merged base options: ``*`` < prefix wildcards < exact name."""
        merged: dict = dict(self.base_options.get("*", {}))
        for pattern in sorted(self.base_options):
            if pattern in ("*", algorithm):
                continue
            if pattern.endswith("*") and algorithm.startswith(pattern[:-1]):
                merged.update(self.base_options[pattern])
        merged.update(self.base_options.get(algorithm, {}))
        return merged


@dataclass
class GridPoint:
    """One cell of the expanded grid.

    ``request`` is ``None`` for infeasible cells (``error`` says why).
    ``energy_cap_uj`` is carried as annotation — a post-filter, never
    part of the request.
    """

    index: int
    algorithm: str
    fabric_scale: float
    rec_freq: float | None
    region_budget: int | None
    energy_cap_uj: float | None
    seed: int | None
    fleet: str | None
    request: ScheduleRequest | None = None
    error: str | None = None

    @property
    def feasible_cell(self) -> bool:
        return self.request is not None

    def label(self) -> str:
        parts = [self.algorithm, f"scale={self.fabric_scale:g}"]
        if self.rec_freq is not None:
            parts.append(f"rec_freq={self.rec_freq:g}")
        if self.region_budget is not None:
            parts.append(f"budget={self.region_budget}")
        if self.energy_cap_uj is not None:
            parts.append(f"cap={self.energy_cap_uj:g}uJ")
        if self.seed is not None:
            parts.append(f"seed={self.seed}")
        if self.fleet is not None:
            parts.append(f"fleet={self.fleet}")
        return " ".join(parts)


def transform_instance(
    instance: Instance,
    fabric_scale: float = 1.0,
    rec_freq: float | None = None,
) -> Instance:
    """The instance with its fabric scaled and/or ``rec_freq`` pinned.

    The identity transform returns ``instance`` itself — byte-for-byte
    the same canonical content, so sweep cells at the identity share
    store entries with non-sweep runs.  Non-identity transforms keep
    the architecture name and instance name/metadata unchanged, so
    distinct parameter values that produce identical fabrics still
    collapse in the dedup layer.
    """
    if fabric_scale <= 0:
        raise ExploreError(f"fabric_scale must be positive, got {fabric_scale}")
    arch = instance.architecture
    if fabric_scale == 1.0 and (rec_freq is None or rec_freq == arch.rec_freq):
        return instance
    max_res = (
        arch.max_res if fabric_scale == 1.0 else arch.max_res.scaled(fabric_scale)
    )
    new_arch = Architecture(
        name=arch.name,
        processors=arch.processors,
        max_res=max_res,
        bit_per_resource=dict(arch.bit_per_resource),
        rec_freq=arch.rec_freq if rec_freq is None else float(rec_freq),
        region_quantum=dict(arch.region_quantum)
        if arch.region_quantum
        else None,
        reconfigurators=arch.reconfigurators,
        power=arch.power,
    )
    return replace(instance, architecture=new_arch)


def _build_request(
    instance: Instance,
    spec: GridSpec,
    algorithm: str,
    region_budget: int | None,
    seed: int | None,
    fleet_names: str | None,
) -> ScheduleRequest:
    inner = spec.options_for(algorithm)
    if algorithm in ("pa", "pa-r"):
        options = {"floorplan": True, **inner}
        if region_budget is not None:
            options["max_shrink_iterations"] = int(region_budget)
        if algorithm == "pa-r":
            options.setdefault("iterations", spec.pa_r_iterations)
    else:
        options = dict(inner)
    request_seed = seed if algorithm in _SEEDED_ALGORITHMS else None
    if fleet_names is None:
        return ScheduleRequest(
            instance=instance,
            algorithm=algorithm,
            options=options,
            seed=request_seed,
        )
    from ..fleet import build_fleet

    fleet = build_fleet(
        [n.strip() for n in fleet_names.split(",") if n.strip()],
        comm_penalty=spec.fleet_comm_penalty,
    )
    return ScheduleRequest(
        instance=instance,
        algorithm=f"fleet-{algorithm}",
        options={
            "fleet": fleet.to_dict(),
            "objective": "makespan",
            "restarts": 2,
            "options": options,
        },
        seed=seed,
    )


def expand_grid(instance: Instance, spec: GridSpec) -> list[GridPoint]:
    """Every grid cell, in the fixed axis-product order.

    Infeasible cells (transform makes some hw implementation unfit)
    come back with ``request=None`` and the validation error recorded.
    """
    points: list[GridPoint] = []
    cells = itertools.product(
        spec.algorithms,
        spec.fabric_scales,
        spec.rec_freqs,
        spec.region_budgets,
        spec.energy_caps,
        spec.seeds,
        spec.fleets,
    )
    for index, (alg, scale, freq, budget, cap, seed, fleet) in enumerate(cells):
        point = GridPoint(
            index=index,
            algorithm=alg,
            fabric_scale=float(scale),
            rec_freq=freq,
            region_budget=budget,
            energy_cap_uj=cap,
            seed=seed,
            fleet=fleet,
        )
        try:
            transformed = transform_instance(
                instance, fabric_scale=float(scale), rec_freq=freq
            )
            transformed.validate()
        except ExploreError:
            raise  # spec errors (bad scale) are bugs, not infeasible cells
        except ValueError as exc:
            point.error = str(exc)
        else:
            point.request = _build_request(
                transformed, spec, alg, budget, seed, fleet
            )
        points.append(point)
    return points
