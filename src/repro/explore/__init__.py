"""Design-space exploration: grid sweeps, Pareto fronts, warm starts.

The paper evaluates single design points; a real PR-FPGA flow explores
a constraint space — fabric size vs. makespan vs. energy.  This
package expands a :class:`GridSpec` into canonical
:class:`~repro.engine.ScheduleRequest`\\ s and drives them through the
engine with three stacked perf layers (pre-dispatch dedup + store-first
resolution, cross-point warm starts, deterministic parallel drain),
then extracts an exact Pareto front.  See DESIGN.md § 15.
"""

from .grid import ExploreError, GridPoint, GridSpec, expand_grid, transform_instance
from .pareto import dominates, pareto_front
from .perturb import perturb_wcets
from .sweep import SweepRecord, SweepReport, run_sweep

__all__ = [
    "ExploreError",
    "GridPoint",
    "GridSpec",
    "expand_grid",
    "transform_instance",
    "dominates",
    "pareto_front",
    "perturb_wcets",
    "SweepRecord",
    "SweepReport",
    "run_sweep",
]
