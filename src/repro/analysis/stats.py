"""Schedule statistics: utilization, overheads, parallelism.

Aggregate descriptors of a schedule beyond its makespan — the numbers a
designer looks at to understand *why* one schedule beats another:
how busy the fabric and the cores are, how much time the single
reconfiguration controller is occupied (the paper's central
bottleneck), and how much hardware parallelism was actually realised.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..model import Architecture, Instance, Schedule

__all__ = ["ScheduleStats", "schedule_stats"]


@dataclass(frozen=True)
class ScheduleStats:
    """Aggregate descriptors of one schedule."""

    makespan: float
    hw_tasks: int
    sw_tasks: int
    regions: int
    reconfigurations: int
    reconfiguration_time: float
    controller_busy_fraction: float  # ICAP busy / makespan
    fabric_allocation: dict[str, float]  # sum region res / maxRes, per type
    region_busy_fraction: float  # mean over regions of busy / makespan
    processor_busy_fraction: float  # mean over used cores
    mean_hw_parallelism: float  # time-averaged # of concurrently running HW tasks

    def render(self) -> str:
        alloc = ", ".join(
            f"{k}={v * 100:.0f}%" for k, v in sorted(self.fabric_allocation.items())
        )
        return "\n".join(
            [
                f"makespan:            {self.makespan:.1f}",
                f"tasks:               {self.hw_tasks} HW / {self.sw_tasks} SW",
                f"regions:             {self.regions}",
                f"reconfigurations:    {self.reconfigurations} "
                f"({self.reconfiguration_time:.1f} total, "
                f"controller busy {self.controller_busy_fraction * 100:.1f}%)",
                f"fabric allocation:   {alloc}",
                f"region busy:         {self.region_busy_fraction * 100:.1f}%",
                f"cores busy:          {self.processor_busy_fraction * 100:.1f}%",
                f"mean HW parallelism: {self.mean_hw_parallelism:.2f}",
            ]
        )


def schedule_stats(instance: Instance, schedule: Schedule) -> ScheduleStats:
    """Compute :class:`ScheduleStats` for a schedule."""
    arch: Architecture = instance.architecture
    makespan = schedule.makespan or 1.0

    hw = schedule.hw_tasks()
    sw = schedule.sw_tasks()

    total_alloc = schedule.total_region_resources()
    fabric_allocation = {
        rtype: total_alloc[rtype] / arch.max_res[rtype]
        for rtype in arch.max_res
    }

    reconf_time = schedule.total_reconfiguration_time()

    region_fractions = []
    for region_id in schedule.regions:
        busy = sum(t.duration for t in schedule.region_sequence(region_id))
        region_fractions.append(busy / makespan)
    region_busy = (
        sum(region_fractions) / len(region_fractions) if region_fractions else 0.0
    )

    used_cores = {
        t.placement.index for t in sw  # type: ignore[union-attr]
    }
    proc_fractions = []
    for core in used_cores:
        busy = sum(t.duration for t in schedule.processor_sequence(core))
        proc_fractions.append(busy / makespan)
    proc_busy = (
        sum(proc_fractions) / len(proc_fractions) if proc_fractions else 0.0
    )

    hw_area = sum(t.duration for t in hw)
    return ScheduleStats(
        makespan=schedule.makespan,
        hw_tasks=len(hw),
        sw_tasks=len(sw),
        regions=len(schedule.regions),
        reconfigurations=len(schedule.reconfigurations),
        reconfiguration_time=reconf_time,
        controller_busy_fraction=reconf_time / makespan,
        fabric_allocation=fabric_allocation,
        region_busy_fraction=region_busy,
        processor_busy_fraction=proc_busy,
        mean_hw_parallelism=hw_area / makespan,
    )
