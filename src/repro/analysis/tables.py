"""Plain-text table rendering for the experiment reports.

The harness is terminal-first (no plotting dependency is available
offline), so every paper figure is emitted as an aligned text table
plus machine-readable rows (see :mod:`repro.analysis.runner`), which a
notebook can plot later.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "render_series"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width table with right-aligned numeric columns."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(parts: Sequence[str]) -> str:
        return " | ".join(p.rjust(w) for p, w in zip(parts, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("-+-".join("-" * w for w in widths))
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def render_series(
    name: str, points: Sequence[tuple[float, float]], x_label: str, y_label: str
) -> str:
    """A (x, y) series as a two-column table (figure data export)."""
    return render_table(
        [x_label, y_label],
        [(x, y) for x, y in points],
        title=name,
    )


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        return f"{value:.3f}" if abs(value) < 10 else f"{value:.2f}"
    return str(value)
