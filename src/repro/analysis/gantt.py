"""ASCII Gantt rendering of schedules.

Draws one lane per resource — each reconfigurable region, each
processor core, and the reconfiguration controller — which is the same
visual the paper uses in Figure 1 to explain the resource-efficiency
argument.
"""

from __future__ import annotations

from ..model import (
    ProcessorPlacement,
    RegionPlacement,
    Schedule,
)

__all__ = ["render_gantt"]


def render_gantt(schedule: Schedule, width: int = 80) -> str:
    """Render the schedule as fixed-width ASCII lanes.

    Tasks are drawn as ``[tid###]`` blocks, reconfigurations on their
    region's lane as ``░`` blocks and on the controller lane as ``▒``.
    """
    makespan = schedule.makespan
    if makespan <= 0:
        return "(empty schedule)"
    scale = (width - 1) / makespan

    def span(start: float, end: float) -> tuple[int, int]:
        a = int(round(start * scale))
        b = max(a + 1, int(round(end * scale)))
        return a, min(b, width)

    lanes: list[tuple[str, list[tuple[int, int, str]]]] = []

    for region_id in sorted(schedule.regions):
        blocks = []
        for task in schedule.region_sequence(region_id):
            a, b = span(task.start, task.end)
            blocks.append((a, b, task.task_id))
        for rc in schedule.reconfigurations:
            if rc.region_id == region_id:
                a, b = span(rc.start, rc.end)
                blocks.append((a, b, "░"))
        lanes.append((region_id, blocks))

    processors = sorted(
        {
            t.placement.index
            for t in schedule.tasks.values()
            if isinstance(t.placement, ProcessorPlacement)
        }
    )
    for proc in processors:
        blocks = []
        for task in schedule.processor_sequence(proc):
            a, b = span(task.start, task.end)
            blocks.append((a, b, task.task_id))
        lanes.append((f"P{proc}", blocks))

    controllers = sorted({rc.controller for rc in schedule.reconfigurations})
    for controller in controllers:
        blocks = []
        for rc in schedule.reconfigurations:
            if rc.controller != controller:
                continue
            a, b = span(rc.start, rc.end)
            blocks.append((a, b, "▒"))
        label = "ICAP" if controllers == [0] else f"ICAP{controller}"
        lanes.append((label, blocks))

    label_width = max((len(name) for name, _ in lanes), default=4)
    out = [
        f"makespan = {makespan:.1f} (1 col ~ {1 / scale:.1f} time units)"
    ]
    for name, blocks in lanes:
        row = [" "] * width
        for a, b, text in sorted(blocks):
            _draw(row, a, b, text)
        out.append(f"{name.rjust(label_width)} |{''.join(row)}|")
    return "\n".join(out)


def _draw(row: list[str], a: int, b: int, text: str) -> None:
    width = b - a
    if text in ("░", "▒"):
        fill = text
        label = ""
    else:
        fill = "#"
        label = text
    block = list(fill * width)
    if label and width >= 2:
        inner = label[: width - 1]
        block[0] = "["
        for i, ch in enumerate(inner):
            if 1 + i < width:
                block[1 + i] = ch
    for i in range(width):
        if a + i < len(row):
            row[a + i] = block[i]
