"""Metrics and reporting for online (arrival-driven) executions.

Aggregates an :class:`~repro.online.runtime.OnlineResult` into the
numbers a multi-tenant evaluation needs — per-tenant deadline hit
rates, preemption counts, the incremental-vs-full re-plan ratio — and
provides :func:`online_sweep`, a seeded fault-rate study over arrival
traces (the engine behind ``benchmarks/bench_online.py``).

Determinism note: every simulated quantity in :class:`OnlineMetrics`
is bit-reproducible for a fixed trace/fault/seed tuple.  Re-plan
*wall-clock* latencies (p50/p99) are real measurements and therefore
vary run to run; they are kept in a separate ``replan_wall_*`` group
that the determinism gate ignores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..online import (
    ArrivalTrace,
    CheckpointModel,
    OnlineResult,
    generate_trace,
    run_online,
)
from ..sim import FaultPlan, RecoveryPolicy, TransientTaskFaults
from .parallel import parallel_map
from .tables import render_table

__all__ = [
    "TenantMetrics",
    "OnlineMetrics",
    "OnlineSweepPoint",
    "online_metrics",
    "online_sweep",
    "render_online_metrics",
    "render_online_sweep",
]


@dataclass(frozen=True)
class TenantMetrics:
    """Per-tenant share of one online run."""

    tenant: str
    jobs: int
    completed: int
    deadline_hits: int
    deadline_misses: int
    departed: int
    preemptions: int

    @property
    def hit_rate(self) -> float:
        judged = self.jobs - self.departed
        return self.deadline_hits / judged if judged else 1.0


@dataclass(frozen=True)
class OnlineMetrics:
    """Run-level summary of one online execution.

    All fields except ``replan_wall_p50``/``replan_wall_p99`` are
    deterministic for a fixed (trace, faults, seed).
    """

    trace_name: str
    jobs: int
    completed: int
    deadline_hits: int
    deadline_misses: int
    departed: int
    hit_rate: float
    preemptions: int
    checkpoints: int
    resumes: int
    fallbacks: int
    failed_tasks: int
    region_allocs: int
    region_reclaims: int
    region_deaths: int
    replans: int
    replan_incremental: int
    replan_full: int
    incremental_ratio: float
    makespan: float
    tenants: tuple[TenantMetrics, ...]
    # wall-clock measurements — excluded from determinism comparisons
    replan_wall_p50: float
    replan_wall_p99: float


def _percentile(values: Sequence[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def online_metrics(result: OnlineResult) -> OnlineMetrics:
    """Aggregate one online run into :class:`OnlineMetrics`."""
    counts = result.trace.counts()
    per_tenant: dict[str, dict[str, int]] = {}
    for job in result.jobs.values():
        bucket = per_tenant.setdefault(
            job.tenant,
            {
                "jobs": 0,
                "completed": 0,
                "hits": 0,
                "misses": 0,
                "departed": 0,
                "preemptions": 0,
            },
        )
        bucket["jobs"] += 1
        bucket["preemptions"] += job.preemptions
        if job.departed:
            bucket["departed"] += 1
            continue
        if job.completed_at is not None:
            bucket["completed"] += 1
        if job.hit:
            bucket["hits"] += 1
        else:
            bucket["misses"] += 1
    tenants = tuple(
        TenantMetrics(
            tenant=tenant,
            jobs=b["jobs"],
            completed=b["completed"],
            deadline_hits=b["hits"],
            deadline_misses=b["misses"],
            departed=b["departed"],
            preemptions=b["preemptions"],
        )
        for tenant, b in sorted(per_tenant.items())
    )
    judged = [j for j in result.jobs.values() if not j.departed]
    hits = sum(1 for j in judged if j.hit)
    walls = [wall for _, wall in result.replans]
    return OnlineMetrics(
        trace_name=result.trace_name,
        jobs=len(result.jobs),
        completed=sum(
            1 for j in result.jobs.values() if j.completed_at is not None
        ),
        deadline_hits=hits,
        deadline_misses=len(judged) - hits,
        departed=sum(1 for j in result.jobs.values() if j.departed),
        hit_rate=hits / len(judged) if judged else 1.0,
        preemptions=sum(j.preemptions for j in result.jobs.values()),
        checkpoints=counts.get("checkpoint", 0),
        resumes=counts.get("resume", 0),
        fallbacks=counts.get("fallback", 0),
        failed_tasks=sum(1 for t in result.tasks.values() if t.failed),
        region_allocs=counts.get("region-alloc", 0),
        region_reclaims=counts.get("region-reclaim", 0),
        region_deaths=counts.get("region-death", 0),
        replans=len(result.replans),
        replan_incremental=result.replan_incremental,
        replan_full=result.replan_full,
        incremental_ratio=result.incremental_ratio,
        makespan=result.makespan,
        tenants=tenants,
        replan_wall_p50=_percentile(walls, 0.5),
        replan_wall_p99=_percentile(walls, 0.99),
    )


def render_online_metrics(metrics: OnlineMetrics) -> str:
    """Human-readable report: run summary plus a per-tenant table."""
    lines = [
        f"online run {metrics.trace_name}: {metrics.completed}/{metrics.jobs}"
        f" jobs completed, deadline hit rate "
        f"{metrics.hit_rate * 100:.0f}% "
        f"({metrics.deadline_hits} hit / {metrics.deadline_misses} missed"
        f"{f' / {metrics.departed} departed' if metrics.departed else ''})",
        f"re-plans: {metrics.replans} "
        f"({metrics.replan_incremental} incremental, "
        f"{metrics.replan_full} full — "
        f"{metrics.incremental_ratio * 100:.0f}% incremental); "
        f"wall p50 {metrics.replan_wall_p50 * 1e3:.2f} ms, "
        f"p99 {metrics.replan_wall_p99 * 1e3:.2f} ms",
        f"preemptions: {metrics.preemptions} "
        f"(checkpoints {metrics.checkpoints}, resumes {metrics.resumes}); "
        f"fallbacks {metrics.fallbacks}, failed tasks {metrics.failed_tasks}",
        f"regions: {metrics.region_allocs} allocated, "
        f"{metrics.region_reclaims} reclaimed, "
        f"{metrics.region_deaths} died; makespan {metrics.makespan:.1f}",
    ]
    if metrics.tenants:
        lines.append(
            render_table(
                ["tenant", "jobs", "done", "hit", "miss", "gone", "preempt"],
                [
                    [
                        t.tenant,
                        str(t.jobs),
                        str(t.completed),
                        str(t.deadline_hits),
                        str(t.deadline_misses),
                        str(t.departed),
                        str(t.preemptions),
                    ]
                    for t in metrics.tenants
                ],
                title="per-tenant outcomes",
            )
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class OnlineSweepPoint:
    """Aggregated online metrics at one transient fault rate."""

    rate: float
    trials: int
    hit_rate: float  # mean over trials
    incremental_ratio: float  # mean over trials
    preemptions: float  # mean per trial
    fallbacks: float  # mean per trial
    failed_tasks: float  # mean per trial


def _evaluate_online_rate(item) -> OnlineSweepPoint:
    """Pool worker: all trials at one fault rate.

    Module-level and driven only by its (picklable) item, so fanning
    rates over processes cannot change any simulated number — the
    determinism gate runs the same sweep at ``jobs=1`` and ``jobs>1``.
    """
    trace, rate, trials, seed, policy, checkpoint = item
    metrics = []
    for trial in range(trials):
        faults = (
            FaultPlan([TransientTaskFaults(rate=rate, seed=seed + trial)])
            if rate > 0
            else None
        )
        result = run_online(
            trace, faults=faults, policy=policy, checkpoint=checkpoint
        )
        metrics.append(online_metrics(result))
    return OnlineSweepPoint(
        rate=rate,
        trials=trials,
        hit_rate=sum(m.hit_rate for m in metrics) / trials,
        incremental_ratio=sum(m.incremental_ratio for m in metrics) / trials,
        preemptions=sum(m.preemptions for m in metrics) / trials,
        fallbacks=sum(m.fallbacks for m in metrics) / trials,
        failed_tasks=sum(m.failed_tasks for m in metrics) / trials,
    )


def online_sweep(
    trace: ArrivalTrace | None = None,
    rates: Sequence[float] = (0.0, 0.05, 0.1, 0.2),
    trials: int = 5,
    seed: int = 0,
    policy: RecoveryPolicy | None = None,
    checkpoint: CheckpointModel | None = None,
    jobs: int = 1,
) -> list[OnlineSweepPoint]:
    """Deadline hit rate and re-plan behaviour vs transient fault rate.

    Each rate point is an independent, seeded batch of trials; ``jobs``
    fans the rate points over a process pool without changing any
    number in the result (points stay in ``rates`` order).
    """
    if trace is None:
        trace = generate_trace(seed=seed)
    policy = policy or RecoveryPolicy()
    items = [
        (trace, rate, trials, seed, policy, checkpoint) for rate in rates
    ]
    return parallel_map(_evaluate_online_rate, items, jobs=jobs)


def render_online_sweep(points: Sequence[OnlineSweepPoint]) -> str:
    return render_table(
        ["fault rate", "hit rate", "incremental", "preempt", "fallback", "failed"],
        [
            [
                f"{p.rate * 100:.0f}%",
                f"{p.hit_rate * 100:.0f}%",
                f"{p.incremental_ratio * 100:.0f}%",
                f"{p.preemptions:.1f}",
                f"{p.fallbacks:.1f}",
                f"{p.failed_tasks:.1f}",
            ]
            for p in points
        ],
        title=(
            f"online fault sweep "
            f"({points[0].trials if points else 0} trials/rate)"
        ),
    )
