"""Experiment harness regenerating the paper's Table I and Figures 2-6.

Scaling: the paper's full evaluation (10 groups x 10 graphs, IS-5 run
to completion) takes hours; the harness therefore supports three
profiles selected by the ``REPRO_SUITE`` environment variable or the
``profile`` argument:

* ``tiny``  — smoke profile used by CI and pytest-benchmark,
* ``small`` — the committed default: groups 10..60, 3 graphs each,
* ``full``  — the paper's 10x10 sweep (long).

Each ``run_*`` function returns plain dataclasses with a ``render()``
producing the text table, so the CLI, the benchmarks and EXPERIMENTS.md
all share one code path.
"""

from __future__ import annotations

import json
import os
import time as _time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from ..benchgen import paper_suite
from ..engine import ScheduleRequest, get_backend
from ..floorplan import Floorplanner
from ..model import Instance
from ..validate import check_schedule
from .metrics import Improvement, group_improvement
from .parallel import parallel_map
from .tables import render_table

__all__ = [
    "ExperimentConfig",
    "QualityResults",
    "ConvergenceResults",
    "run_quality",
    "run_convergence",
]

_PROFILES = {
    "tiny": dict(group_sizes=(10, 20, 30), per_group=2, is5_node_limit=2_000),
    "small": dict(
        group_sizes=(10, 20, 30, 40, 50, 60), per_group=4, is5_node_limit=8_000
    ),
    "full": dict(
        group_sizes=tuple(range(10, 101, 10)), per_group=10, is5_node_limit=20_000
    ),
}


@dataclass
class ExperimentConfig:
    """Knobs for one harness run.

    ``jobs`` fans the per-instance evaluations out over a process pool
    (1 = serial); results are ordered by ``(group, name)`` either way,
    so the record stream is independent of worker scheduling.
    ``pa_r_iteration_cap`` replaces PA-R's wall-clock budget with a
    fixed restart count, which makes a run's records deterministic
    (modulo the measured wall-clock fields) — the knob behind the
    serial-vs-parallel identity test.  Capped PA-R runs always go
    through :func:`~repro.core.randomized.pa_r_schedule_parallel`
    (with ``pa_r_jobs`` workers, default 1 = in-process), whose
    per-restart derived seeds make the winning schedule independent
    of the worker count.
    """

    profile: str = ""
    seed: int = 2016
    group_sizes: tuple[int, ...] = ()
    per_group: int = 0
    is1_node_limit: int = 50_000
    is5_node_limit: int = 0
    pa_r_min_budget: float = 0.25  # seconds; floor for tiny IS-5 runtimes
    pa_r_max_budget: float = 60.0
    pa_r_iteration_cap: int | None = None
    validate: bool = True
    use_floorplanner: bool = True
    jobs: int = 1
    pa_r_jobs: int = 1
    # IS-k first-level window fan-out workers (k >= 2 only; the
    # reduction is deterministic, so records are identical for any
    # value — this knob trades processes for IS-5 wall-clock).
    isk_jobs: int = 1

    def __post_init__(self) -> None:
        profile = self.profile or os.environ.get("REPRO_SUITE", "small")
        if profile not in _PROFILES:
            raise ValueError(
                f"unknown profile {profile!r}; choose from {sorted(_PROFILES)}"
            )
        self.profile = profile
        defaults = _PROFILES[profile]
        if not self.group_sizes:
            self.group_sizes = defaults["group_sizes"]
        if not self.per_group:
            self.per_group = defaults["per_group"]
        if not self.is5_node_limit:
            self.is5_node_limit = defaults["is5_node_limit"]

    def suite(self) -> dict[int, list[Instance]]:
        return paper_suite(
            seed=self.seed,
            group_sizes=self.group_sizes,
            per_group=self.per_group,
        )


@dataclass
class InstanceRecord:
    """All per-instance measurements the figures need."""

    group: int
    name: str
    pa_makespan: float
    pa_scheduling_time: float
    pa_floorplanning_time: float
    pa_feasible: bool
    is1_makespan: float
    is1_time: float
    is5_makespan: float
    is5_time: float
    pa_r_makespan: float
    pa_r_budget: float
    pa_r_iterations: int
    # Floorplanner cache observability (PR "fast path"); defaults keep
    # pre-existing quality.json files loadable via from_json.
    floorplan_queries: int = 0
    floorplan_exact_hits: int = 0
    floorplan_dominance_hits: int = 0
    floorplan_candidate_memo_hits: int = 0
    floorplan_engine_time: float = 0.0
    floorplan_query_time: float = 0.0
    # IS-k search-engine observability (trail DFS overhaul); defaults
    # again keep older quality.json files loadable.
    is1_nodes: int = 0
    is5_nodes: int = 0
    is5_bound_pruned: int = 0
    is5_memo_hits: int = 0
    is5_memo_entries: int = 0
    is5_incumbent_seeds: int = 0
    is5_fallback_completions: int = 0
    is5_max_undo_depth: int = 0
    is5_fanout_windows: int = 0
    is5_jobs: int = 1
    # Energy accounting (ROADMAP item 3): the PA schedule costed under
    # the reference ZedBoard power model.  Defaults keep pre-energy
    # quality.json files loadable via from_json.
    pa_energy_static_j: float = 0.0
    pa_energy_dynamic_j: float = 0.0
    pa_energy_reconf_j: float = 0.0
    pa_energy_total_j: float = 0.0
    devices_used: int = 1


@dataclass
class QualityResults:
    """Everything behind Table I and Figures 2-5."""

    config_profile: str
    records: list[InstanceRecord] = field(default_factory=list)

    # -- aggregation ------------------------------------------------------

    def groups(self) -> list[int]:
        return sorted({r.group for r in self.records})

    def _group(self, size: int) -> list[InstanceRecord]:
        return [r for r in self.records if r.group == size]

    def group_means(self, attr: str) -> list[tuple[int, float]]:
        out = []
        for size in self.groups():
            rows = self._group(size)
            if not rows:  # defensively skip filtered-out groups
                continue
            out.append((size, sum(getattr(r, attr) for r in rows) / len(rows)))
        return out

    def improvement(
        self, baseline_attr: str, candidate_attr: str
    ) -> list[tuple[int, Improvement]]:
        out = []
        for size in self.groups():
            rows = self._group(size)
            if not rows:
                continue
            out.append(
                (
                    size,
                    group_improvement(
                        [getattr(r, baseline_attr) for r in rows],
                        [getattr(r, candidate_attr) for r in rows],
                    ),
                )
            )
        return out

    # -- renders (one per paper exhibit) -------------------------------------

    def render_table1(self) -> str:
        # The last column is the paper's shared PA-R / IS-5 budget (PA-R
        # is granted IS-5's measured runtime), not IS-5's runtime again —
        # a header/cell mismatch in an earlier revision.
        rows = []
        for size in self.groups():
            group = self._group(size)
            n = len(group)
            if not n:
                continue
            rows.append(
                (
                    size,
                    sum(r.pa_scheduling_time for r in group) / n,
                    sum(r.pa_floorplanning_time for r in group) / n,
                    sum(r.pa_scheduling_time + r.pa_floorplanning_time for r in group)
                    / n,
                    sum(r.is1_time for r in group) / n,
                    sum(r.is5_time for r in group) / n,
                    sum(r.pa_r_budget for r in group) / n,
                )
            )
        return render_table(
            ["# Tasks", "PA sched [s]", "PA floorp [s]", "PA total [s]",
             "IS-1 [s]", "IS-5 [s]", "PA-R/IS-5 budget [s]"],
            rows,
            title="Table I — algorithm execution times (averaged per group)",
        )

    def render_fig2(self) -> str:
        rows = []
        for size in self.groups():
            group = self._group(size)
            n = len(group)
            rows.append(
                (
                    size,
                    sum(r.pa_makespan for r in group) / n,
                    sum(r.pa_r_makespan for r in group) / n,
                    sum(r.is1_makespan for r in group) / n,
                    sum(r.is5_makespan for r in group) / n,
                )
            )
        return render_table(
            ["# Tasks", "PA", "PA-R", "IS-1", "IS-5"],
            rows,
            title="Figure 2 — average schedule execution time (us) per group",
        )

    def _render_improvement(
        self, title: str, baseline_attr: str, candidate_attr: str
    ) -> str:
        rows = []
        total_mean = []
        for size, imp in self.improvement(baseline_attr, candidate_attr):
            rows.append((size, imp.mean, imp.std, imp.minimum, imp.maximum))
            total_mean.append(imp.mean)
        table = render_table(
            ["# Tasks", "mean impr [%]", "std [%]", "min [%]", "max [%]"],
            rows,
            title=title,
        )
        if not total_mean:
            return f"{table}\noverall average improvement: n/a (no records)"
        overall = sum(total_mean) / len(total_mean)
        return f"{table}\noverall average improvement: {overall:+.1f}%"

    def render_fig3(self) -> str:
        return self._render_improvement(
            "Figure 3 — improvement of PA vs IS-1 (paper: +14.8% avg)",
            "is1_makespan",
            "pa_makespan",
        )

    def render_fig4(self) -> str:
        return self._render_improvement(
            "Figure 4 — improvement of PA vs IS-5",
            "is5_makespan",
            "pa_makespan",
        )

    def render_fig5(self) -> str:
        return self._render_improvement(
            "Figure 5 — improvement of PA-R vs IS-5 (paper: +22.3% for >20 tasks)",
            "is5_makespan",
            "pa_r_makespan",
        )

    def render_cache_stats(self) -> str:
        """Floorplanner fast-path effectiveness, aggregated per group.

        ``hit %`` counts every query answered without an engine run
        (exact-key plus dominance-lattice hits); ``engine [s]`` is the
        summed time actually spent in backtracking / MILP, versus the
        total wall-clock of all feasibility queries in ``query [s]``.
        """
        rows = []
        for size in self.groups():
            group = self._group(size)
            if not group:
                continue
            queries = sum(r.floorplan_queries for r in group)
            exact = sum(r.floorplan_exact_hits for r in group)
            dom = sum(r.floorplan_dominance_hits for r in group)
            memo = sum(r.floorplan_candidate_memo_hits for r in group)
            engine = sum(r.floorplan_engine_time for r in group)
            query = sum(r.floorplan_query_time for r in group)
            hit_pct = 100.0 * (exact + dom) / queries if queries else 0.0
            rows.append(
                (size, queries, exact, dom, f"{hit_pct:.1f}", memo,
                 f"{engine:.3f}", f"{query:.3f}")
            )
        return render_table(
            ["# Tasks", "queries", "exact hits", "dom hits", "hit %",
             "cand memo", "engine [s]", "query [s]"],
            rows,
            title="Floorplanner cache statistics (summed per group)",
        )

    def render_search_stats(self) -> str:
        """IS-k trail-engine effectiveness, aggregated per group.

        ``bound`` / ``memo`` count branches cut by the incumbent
        makespan bound and the window-state dominance memo; ``seeds``
        and ``fallbacks`` count greedy incumbent completions and
        budget-exhaustion recoveries; ``max trail`` is the undo-log
        high-water mark (the in-place DFS's only state overhead).
        """
        rows = []
        for size in self.groups():
            group = self._group(size)
            if not group:
                continue
            nodes1 = sum(r.is1_nodes for r in group)
            nodes5 = sum(r.is5_nodes for r in group)
            bound = sum(r.is5_bound_pruned for r in group)
            memo = sum(r.is5_memo_hits for r in group)
            seeds = sum(r.is5_incumbent_seeds for r in group)
            fallbacks = sum(r.is5_fallback_completions for r in group)
            max_trail = max((r.is5_max_undo_depth for r in group), default=0)
            fanout = sum(r.is5_fanout_windows for r in group)
            rows.append(
                (size, nodes1, nodes5, bound, memo, seeds, fallbacks,
                 max_trail, fanout)
            )
        return render_table(
            ["# Tasks", "IS-1 nodes", "IS-5 nodes", "bound", "memo",
             "seeds", "fallbacks", "max trail", "fanout wnd"],
            rows,
            title="IS-k search statistics (summed per group)",
        )

    def render_energy(self) -> str:
        """PA schedule energy under the reference ZedBoard power model,
        averaged per group (static / dynamic / reconfiguration split)."""
        rows = []
        for size in self.groups():
            group = self._group(size)
            n = len(group)
            if not n:
                continue
            rows.append(
                (
                    size,
                    sum(r.pa_energy_static_j for r in group) / n,
                    sum(r.pa_energy_dynamic_j for r in group) / n,
                    sum(r.pa_energy_reconf_j for r in group) / n,
                    sum(r.pa_energy_total_j for r in group) / n,
                )
            )
        return render_table(
            ["# Tasks", "static [uJ]", "dynamic [uJ]", "reconf [uJ]",
             "total [uJ]"],
            rows,
            title="Energy — PA schedule, ZedBoard power model (averaged per group)",
        )

    def render_all(self) -> str:
        return "\n\n".join(
            [
                self.render_table1(),
                self.render_fig2(),
                self.render_fig3(),
                self.render_fig4(),
                self.render_fig5(),
                self.render_energy(),
                self.render_cache_stats(),
                self.render_search_stats(),
            ]
        )

    # -- persistence --------------------------------------------------------------

    def to_json(self, path: str | Path) -> None:
        payload = {
            "profile": self.config_profile,
            "records": [asdict(r) for r in self.records],
        }
        Path(path).write_text(json.dumps(payload, indent=2))

    @classmethod
    def from_json(cls, path: str | Path) -> "QualityResults":
        payload = json.loads(Path(path).read_text())
        return cls(
            config_profile=payload["profile"],
            records=[InstanceRecord(**r) for r in payload["records"]],
        )


@dataclass(frozen=True)
class _QualityItem:
    """One picklable unit of harness work: evaluate one instance."""

    group: int
    instance: Instance
    config: ExperimentConfig


def _evaluate_quality_item(item: _QualityItem) -> InstanceRecord:
    """Run PA / IS-1 / IS-5 / PA-R on one instance (pool worker).

    All four runs dispatch through the engine registry
    (``repro.engine``); the shared floorplanner is passed as execution
    context so PA and PA-R reuse one dominance cache, exactly as the
    legacy direct-call harness did.
    """
    config, instance, size = item.config, item.instance, item.group
    floorplanner = (
        Floorplanner.for_architecture(instance.architecture)
        if config.use_floorplanner
        else None
    )
    fp_option = {"floorplan": config.use_floorplanner}
    pa = get_backend("pa").run(
        ScheduleRequest(instance, "pa", options=dict(fp_option)),
        floorplanner=floorplanner,
    )
    r1 = get_backend("is-1").run(
        ScheduleRequest(
            instance, "is-1", options={"node_limit": config.is1_node_limit}
        )
    )
    is5_options: dict = {"node_limit": config.is5_node_limit}
    if config.isk_jobs > 1:
        # Fan-out never changes the schedule, so it only enters the
        # request (and thus the cache key) when actually engaged.
        is5_options["jobs"] = config.isk_jobs
    r5 = get_backend("is-5").run(
        ScheduleRequest(instance, "is-5", options=is5_options)
    )
    if config.pa_r_iteration_cap is not None:
        # Capped runs go through the parallel entry point even with
        # pa_r_jobs=1 (the engine routes any 'iterations' request that
        # way): its derived per-restart seeds make the result identical
        # for every worker count, which is the property the
        # serial-vs-parallel identity test checks.
        budget = 0.0
        par_request = ScheduleRequest(
            instance,
            "pa-r",
            options={
                **fp_option,
                "iterations": config.pa_r_iteration_cap,
                "jobs": config.pa_r_jobs,
            },
            seed=config.seed,
        )
    else:
        budget = min(
            max(r5.total_time, config.pa_r_min_budget), config.pa_r_max_budget
        )
        par_request = ScheduleRequest(
            instance,
            "pa-r",
            options={**fp_option, "jobs": config.pa_r_jobs},
            seed=config.seed,
            budget=budget,
        )
    par = get_backend("pa-r").run(par_request, floorplanner=floorplanner)
    if config.validate:
        check_schedule(instance, pa.schedule).raise_if_invalid()
        check_schedule(
            instance, r1.schedule, allow_module_reuse=True
        ).raise_if_invalid()
        check_schedule(
            instance, r5.schedule, allow_module_reuse=True
        ).raise_if_invalid()
        check_schedule(instance, par.schedule).raise_if_invalid()
    fp_stats = floorplanner.stats if floorplanner is not None else {}
    s1 = r1.metadata.get("stats", {})
    s5 = r5.metadata.get("stats", {})
    from ..model.power import energy_breakdown, zedboard_power

    pa_energy = energy_breakdown(
        pa.schedule, instance.architecture, zedboard_power()
    )
    return InstanceRecord(
        group=size,
        name=instance.name,
        pa_makespan=pa.makespan,
        pa_scheduling_time=pa.scheduling_time,
        pa_floorplanning_time=pa.floorplanning_time,
        pa_feasible=pa.feasible,
        is1_makespan=r1.makespan,
        is1_time=r1.total_time,
        is5_makespan=r5.makespan,
        is5_time=r5.total_time,
        pa_r_makespan=par.makespan,
        pa_r_budget=budget,
        pa_r_iterations=par.iterations,
        floorplan_queries=fp_stats.get("queries", 0),
        floorplan_exact_hits=fp_stats.get("cache_hits", 0),
        floorplan_dominance_hits=fp_stats.get("dominance_hits", 0),
        floorplan_candidate_memo_hits=fp_stats.get("candidate_memo_hits", 0),
        floorplan_engine_time=fp_stats.get("engine_time", 0.0),
        floorplan_query_time=fp_stats.get("query_time", 0.0),
        is1_nodes=s1.get("nodes_expanded", 0),
        is5_nodes=s5.get("nodes_expanded", 0),
        is5_bound_pruned=s5.get("bound_pruned", 0),
        is5_memo_hits=s5.get("memo_hits", 0),
        is5_memo_entries=s5.get("memo_entries", 0),
        is5_incumbent_seeds=s5.get("incumbent_seeds", 0),
        is5_fallback_completions=s5.get("fallback_completions", 0),
        is5_max_undo_depth=s5.get("max_undo_depth", 0),
        is5_fanout_windows=s5.get("fanout_windows", 0),
        is5_jobs=s5.get("jobs", 1),
        pa_energy_static_j=pa_energy.static_j,
        pa_energy_dynamic_j=pa_energy.dynamic_j,
        pa_energy_reconf_j=pa_energy.reconfiguration_j,
        pa_energy_total_j=pa_energy.total_j,
    )


def run_quality(
    config: ExperimentConfig | None = None,
    progress=None,
    jobs: int | None = None,
) -> QualityResults:
    """Run PA, PA-R, IS-1 and IS-5 over the suite (Table I, Figs 2-5).

    PA-R's time budget equals IS-5's measured runtime on the same
    instance (clamped to ``[pa_r_min_budget, pa_r_max_budget]``), the
    paper's fairness rule — unless ``config.pa_r_iteration_cap`` pins a
    deterministic restart count instead.

    ``jobs`` (default: ``config.jobs``) fans instances out over a
    process pool; records come back ordered by ``(group, name)`` in
    both the serial and the parallel path, so downstream aggregation
    and exports never depend on worker completion order.
    """
    config = config or ExperimentConfig()
    if jobs is None:
        jobs = config.jobs
    items = [
        _QualityItem(group=size, instance=instance, config=config)
        for size, instances in sorted(config.suite().items())
        for instance in instances
    ]
    items.sort(key=lambda item: (item.group, item.instance.name))

    reporter = None
    if progress:

        def reporter(record: InstanceRecord) -> None:
            progress(
                f"[{record.group:3d}] {record.name}: "
                f"PA {record.pa_makespan:.0f} | "
                f"IS-1 {record.is1_makespan:.0f} | "
                f"IS-5 {record.is5_makespan:.0f} | "
                f"PA-R {record.pa_r_makespan:.0f} "
                f"({record.pa_r_iterations} iters)"
            )

    records = parallel_map(
        _evaluate_quality_item, items, jobs=jobs, progress=reporter
    )
    return QualityResults(config_profile=config.profile, records=records)


@dataclass
class ConvergenceResults:
    """Figure 6 — PA-R best-so-far makespan over running time."""

    series: dict[int, list[tuple[float, float]]] = field(default_factory=dict)

    def render(self) -> str:
        blocks = []
        for size in sorted(self.series):
            rows = [(f"{t:.2f}", m) for t, m in self.series[size]]
            blocks.append(
                render_table(
                    ["time [s]", "best makespan"],
                    rows,
                    title=f"Figure 6 — PA-R convergence, {size} tasks",
                )
            )
        return "\n\n".join(blocks)

    def to_json(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps({str(k): v for k, v in self.series.items()}, indent=2)
        )


@dataclass(frozen=True)
class _ConvergenceItem:
    """Pool work item for one Figure 6 series."""

    size: int
    budget: float
    seed: int
    use_floorplanner: bool
    pa_r_jobs: int = 1


def _evaluate_convergence_item(
    item: _ConvergenceItem,
) -> tuple[int, list[tuple[float, float]], float, int]:
    from ..benchgen import paper_instance

    instance = paper_instance(item.size, seed=item.seed * 1000 + item.size * 10)
    floorplanner = (
        Floorplanner.for_architecture(instance.architecture)
        if item.use_floorplanner
        else None
    )
    par = get_backend("pa-r").run(
        ScheduleRequest(
            instance,
            "pa-r",
            options={
                "floorplan": item.use_floorplanner,
                "jobs": item.pa_r_jobs,
            },
            seed=item.seed,
            budget=item.budget,
        ),
        floorplanner=floorplanner,
    )
    history = [(t, m) for t, m in par.metadata["history"]]
    return (item.size, history, par.makespan, par.iterations)


def run_convergence(
    sizes: tuple[int, ...] = (20, 40, 60, 80, 100),
    budget: float = 10.0,
    seed: int = 2016,
    use_floorplanner: bool = True,
    progress=None,
    jobs: int = 1,
    pa_r_jobs: int = 1,
) -> ConvergenceResults:
    """Run PA-R with an extended budget on one graph per size (Fig. 6).

    The paper uses 1200 s; the committed default keeps the run short —
    pass ``budget=1200`` to replicate the original protocol.  ``jobs``
    runs the per-size series concurrently (each series is an
    independent PA-R run); note that concurrent series contend for
    CPU, so per-series wall-clock budgets remain honest only while
    ``jobs`` stays at or below the machine's core count.
    ``pa_r_jobs`` instead parallelizes the restarts *within* each
    series via :func:`~repro.core.randomized.pa_r_schedule_parallel`;
    combining both multiplies the process count.
    """
    items = [
        _ConvergenceItem(
            size=size,
            budget=budget,
            seed=seed,
            use_floorplanner=use_floorplanner,
            pa_r_jobs=pa_r_jobs,
        )
        for size in sorted(sizes)
    ]

    reporter = None
    if progress:

        def reporter(result) -> None:
            size, _history, makespan, iterations = result
            progress(
                f"[{size:3d}] best {makespan:.0f} after {iterations} iterations"
            )

    outcomes = parallel_map(
        _evaluate_convergence_item, items, jobs=jobs, progress=reporter
    )
    results = ConvergenceResults()
    for size, history, _makespan, _iterations in outcomes:
        results.series[size] = history
    return results
