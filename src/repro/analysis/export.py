"""CSV / JSON export of experiment results.

The harness is plot-free (offline sandbox), so every figure's data can
be exported to CSV for external plotting.  Column layouts are stable
and documented per function.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from .runner import ConvergenceResults, QualityResults

__all__ = [
    "quality_records_csv",
    "improvement_csv",
    "convergence_csv",
    "export_all",
]


def quality_records_csv(results: QualityResults, path: str | Path | None = None) -> str:
    """One row per instance: every makespan and runtime measured.

    Columns: group, name, pa_makespan, pa_r_makespan, is1_makespan,
    is5_makespan, pa_scheduling_time, pa_floorplanning_time, is1_time,
    is5_time, pa_r_budget, pa_r_iterations, pa_feasible, plus the
    floorplanner cache counters (queries / exact / dominance /
    candidate-memo hits and engine vs query wall-clock) and the IS-k
    search-engine counters (nodes, bound/memo prunes, incumbent seeds,
    fallback completions, undo-trail high-water mark, fan-out), and the
    PA energy breakdown under the reference ZedBoard power model
    (static / dynamic / reconfiguration / total, microjoules).
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        [
            "group", "name", "pa_makespan", "pa_r_makespan",
            "is1_makespan", "is5_makespan", "pa_scheduling_time",
            "pa_floorplanning_time", "is1_time", "is5_time",
            "pa_r_budget", "pa_r_iterations", "pa_feasible",
            "floorplan_queries", "floorplan_exact_hits",
            "floorplan_dominance_hits", "floorplan_candidate_memo_hits",
            "floorplan_engine_time", "floorplan_query_time",
            "is1_nodes", "is5_nodes", "is5_bound_pruned",
            "is5_memo_hits", "is5_memo_entries", "is5_incumbent_seeds",
            "is5_fallback_completions", "is5_max_undo_depth",
            "is5_fanout_windows", "is5_jobs",
            "pa_energy_static_j", "pa_energy_dynamic_j",
            "pa_energy_reconf_j", "pa_energy_total_j", "devices_used",
        ]
    )
    for r in sorted(results.records, key=lambda r: (r.group, r.name)):
        writer.writerow(
            [
                r.group, r.name, r.pa_makespan, r.pa_r_makespan,
                r.is1_makespan, r.is5_makespan, r.pa_scheduling_time,
                r.pa_floorplanning_time, r.is1_time, r.is5_time,
                r.pa_r_budget, r.pa_r_iterations, int(r.pa_feasible),
                r.floorplan_queries, r.floorplan_exact_hits,
                r.floorplan_dominance_hits, r.floorplan_candidate_memo_hits,
                r.floorplan_engine_time, r.floorplan_query_time,
                r.is1_nodes, r.is5_nodes, r.is5_bound_pruned,
                r.is5_memo_hits, r.is5_memo_entries, r.is5_incumbent_seeds,
                r.is5_fallback_completions, r.is5_max_undo_depth,
                r.is5_fanout_windows, r.is5_jobs,
                r.pa_energy_static_j, r.pa_energy_dynamic_j,
                r.pa_energy_reconf_j, r.pa_energy_total_j, r.devices_used,
            ]
        )
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


def improvement_csv(
    results: QualityResults,
    baseline_attr: str,
    candidate_attr: str,
    path: str | Path | None = None,
) -> str:
    """Per-group improvement stats (the bars of Figures 3-5).

    Columns: group, mean_improvement_pct, std_pct, min_pct, max_pct, n.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["group", "mean_improvement_pct", "std_pct", "min_pct", "max_pct", "n"])
    for group, imp in results.improvement(baseline_attr, candidate_attr):
        writer.writerow(
            [group, imp.mean, imp.std, imp.minimum, imp.maximum, imp.count]
        )
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


def convergence_csv(
    results: ConvergenceResults, path: str | Path | None = None
) -> str:
    """Figure 6 series. Columns: tasks, time_s, best_makespan."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["tasks", "time_s", "best_makespan"])
    for size in sorted(results.series):
        for time_s, makespan in results.series[size]:
            writer.writerow([size, time_s, makespan])
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


def export_all(
    results: QualityResults,
    directory: str | Path,
    convergence: ConvergenceResults | None = None,
) -> list[Path]:
    """Write every figure's CSV into ``directory``; returns the paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []

    path = directory / "quality_records.csv"
    quality_records_csv(results, path)
    written.append(path)

    for name, base, cand in (
        ("fig3_pa_vs_is1.csv", "is1_makespan", "pa_makespan"),
        ("fig4_pa_vs_is5.csv", "is5_makespan", "pa_makespan"),
        ("fig5_par_vs_is5.csv", "is5_makespan", "pa_r_makespan"),
    ):
        path = directory / name
        improvement_csv(results, base, cand, path)
        written.append(path)

    if convergence is not None:
        path = directory / "fig6_convergence.csv"
        convergence_csv(convergence, path)
        written.append(path)
    return written
