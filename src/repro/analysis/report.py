"""Self-contained HTML report of the reproduction results.

No plotting library is available offline, so the report embeds
hand-built SVG charts: grouped bars for the per-group makespans
(Figure 2), bar charts with error whiskers for the improvement figures
(3-5) and staircase lines for the convergence series (Figure 6) —
everything in one HTML file with zero external assets.
"""

from __future__ import annotations

import html
from pathlib import Path

from .runner import ConvergenceResults, QualityResults

__all__ = ["write_html_report", "render_html_report"]

_PALETTE = ("#4C78A8", "#F58518", "#54A24B", "#E45756")


def _svg_grouped_bars(
    title: str,
    groups: list[int],
    series: dict[str, list[float]],
    y_label: str,
    width: int = 640,
    height: int = 300,
) -> str:
    """Grouped vertical bars, one cluster per task-graph size."""
    margin_l, margin_b, margin_t = 60, 40, 30
    plot_w = width - margin_l - 20
    plot_h = height - margin_b - margin_t
    y_max = max((max(v) for v in series.values() if v), default=1.0) * 1.1 or 1.0
    n_groups = max(len(groups), 1)
    n_series = max(len(series), 1)
    cluster_w = plot_w / n_groups
    bar_w = cluster_w * 0.8 / n_series

    parts = [
        f'<svg width="{width}" height="{height}" '
        f'xmlns="http://www.w3.org/2000/svg" font-family="sans-serif">',
        f'<text x="{width / 2}" y="18" text-anchor="middle" '
        f'font-size="14">{html.escape(title)}</text>',
    ]
    # Axes.
    x0, y0 = margin_l, margin_t + plot_h
    parts.append(
        f'<line x1="{x0}" y1="{margin_t}" x2="{x0}" y2="{y0}" stroke="#333"/>'
    )
    parts.append(
        f'<line x1="{x0}" y1="{y0}" x2="{x0 + plot_w}" y2="{y0}" stroke="#333"/>'
    )
    for tick in range(5):
        value = y_max * tick / 4
        y = y0 - plot_h * tick / 4
        parts.append(
            f'<text x="{x0 - 6}" y="{y + 4}" text-anchor="end" '
            f'font-size="10">{value:,.0f}</text>'
        )
        parts.append(
            f'<line x1="{x0}" y1="{y}" x2="{x0 + plot_w}" y2="{y}" '
            f'stroke="#ddd" stroke-dasharray="3,3"/>'
        )
    parts.append(
        f'<text x="12" y="{margin_t + plot_h / 2}" font-size="11" '
        f'transform="rotate(-90 12 {margin_t + plot_h / 2})" '
        f'text-anchor="middle">{html.escape(y_label)}</text>'
    )
    for g_index, group in enumerate(groups):
        cx = x0 + cluster_w * (g_index + 0.5)
        parts.append(
            f'<text x="{cx}" y="{y0 + 16}" text-anchor="middle" '
            f'font-size="11">{group}</text>'
        )
        for s_index, (name, values) in enumerate(series.items()):
            value = values[g_index]
            bar_h = max(0.0, value / y_max * plot_h)
            bx = cx - (n_series * bar_w) / 2 + s_index * bar_w
            parts.append(
                f'<rect x="{bx:.1f}" y="{y0 - bar_h:.1f}" width="{bar_w:.1f}" '
                f'height="{bar_h:.1f}" fill="{_PALETTE[s_index % len(_PALETTE)]}">'
                f"<title>{html.escape(name)} @ {group}: {value:,.1f}</title></rect>"
            )
    # Legend.
    lx = x0 + 8
    for s_index, name in enumerate(series):
        parts.append(
            f'<rect x="{lx}" y="{margin_t + 2 + 14 * s_index}" width="10" '
            f'height="10" fill="{_PALETTE[s_index % len(_PALETTE)]}"/>'
        )
        parts.append(
            f'<text x="{lx + 14}" y="{margin_t + 11 + 14 * s_index}" '
            f'font-size="10">{html.escape(name)}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _svg_improvement_bars(
    title: str,
    groups: list[int],
    means: list[float],
    stds: list[float],
    width: int = 640,
    height: int = 300,
) -> str:
    """Signed bars with ±std whiskers (the Figures 3-5 style)."""
    margin_l, margin_b, margin_t = 60, 40, 30
    plot_w = width - margin_l - 20
    plot_h = height - margin_b - margin_t
    extent = max(
        (abs(m) + s for m, s in zip(means, stds)), default=1.0
    ) * 1.15 or 1.0
    zero_y = margin_t + plot_h / 2

    def y_of(value: float) -> float:
        return zero_y - value / extent * (plot_h / 2)

    n = max(len(groups), 1)
    cluster_w = plot_w / n
    bar_w = cluster_w * 0.55

    parts = [
        f'<svg width="{width}" height="{height}" '
        f'xmlns="http://www.w3.org/2000/svg" font-family="sans-serif">',
        f'<text x="{width / 2}" y="18" text-anchor="middle" '
        f'font-size="14">{html.escape(title)}</text>',
        f'<line x1="{margin_l}" y1="{zero_y}" x2="{margin_l + plot_w}" '
        f'y2="{zero_y}" stroke="#333"/>',
    ]
    for tick in (-extent, -extent / 2, extent / 2, extent):
        y = y_of(tick)
        parts.append(
            f'<text x="{margin_l - 6}" y="{y + 4}" text-anchor="end" '
            f'font-size="10">{tick:+.0f}%</text>'
        )
        parts.append(
            f'<line x1="{margin_l}" y1="{y}" x2="{margin_l + plot_w}" y2="{y}" '
            f'stroke="#eee"/>'
        )
    for index, group in enumerate(groups):
        cx = margin_l + cluster_w * (index + 0.5)
        mean, std = means[index], stds[index]
        top, bottom = y_of(max(mean, 0.0)), y_of(min(mean, 0.0))
        color = _PALETTE[0] if mean >= 0 else _PALETTE[3]
        parts.append(
            f'<rect x="{cx - bar_w / 2:.1f}" y="{top:.1f}" width="{bar_w:.1f}" '
            f'height="{max(bottom - top, 0.5):.1f}" fill="{color}">'
            f"<title>{group} tasks: {mean:+.1f}% (±{std:.1f})</title></rect>"
        )
        # Whiskers.
        parts.append(
            f'<line x1="{cx}" y1="{y_of(mean + std)}" x2="{cx}" '
            f'y2="{y_of(mean - std)}" stroke="#333"/>'
        )
        parts.append(
            f'<text x="{cx}" y="{margin_t + plot_h + 16}" text-anchor="middle" '
            f'font-size="11">{group}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _svg_staircase(
    title: str,
    series: dict[int, list[tuple[float, float]]],
    width: int = 640,
    height: int = 300,
) -> str:
    """Best-so-far staircases (Figure 6 style), one line per size."""
    margin_l, margin_b, margin_t = 70, 40, 30
    plot_w = width - margin_l - 20
    plot_h = height - margin_b - margin_t
    t_max = max(
        (t for points in series.values() for t, _ in points), default=1.0
    ) or 1.0
    values = [m for points in series.values() for _, m in points]
    if not values:
        values = [1.0]
    v_min, v_max = min(values) * 0.95, max(values) * 1.05

    def x_of(t: float) -> float:
        return margin_l + t / t_max * plot_w

    def y_of(v: float) -> float:
        span = (v_max - v_min) or 1.0
        return margin_t + (v_max - v) / span * plot_h

    parts = [
        f'<svg width="{width}" height="{height}" '
        f'xmlns="http://www.w3.org/2000/svg" font-family="sans-serif">',
        f'<text x="{width / 2}" y="18" text-anchor="middle" '
        f'font-size="14">{html.escape(title)}</text>',
        f'<line x1="{margin_l}" y1="{margin_t}" x2="{margin_l}" '
        f'y2="{margin_t + plot_h}" stroke="#333"/>',
        f'<line x1="{margin_l}" y1="{margin_t + plot_h}" '
        f'x2="{margin_l + plot_w}" y2="{margin_t + plot_h}" stroke="#333"/>',
    ]
    for index, (size, points) in enumerate(sorted(series.items())):
        if not points:
            continue
        color = _PALETTE[index % len(_PALETTE)]
        path = [f"M {x_of(points[0][0]):.1f} {y_of(points[0][1]):.1f}"]
        for (t0, v0), (t1, v1) in zip(points, points[1:]):
            path.append(f"H {x_of(t1):.1f}")
            path.append(f"V {y_of(v1):.1f}")
        path.append(f"H {x_of(t_max):.1f}")
        parts.append(
            f'<path d="{" ".join(path)}" fill="none" stroke="{color}" '
            f'stroke-width="2"/>'
        )
        parts.append(
            f'<text x="{margin_l + plot_w - 4}" '
            f'y="{y_of(points[-1][1]) - 4}" text-anchor="end" font-size="10" '
            f'fill="{color}">{size} tasks</text>'
        )
    parts.append(
        f'<text x="{margin_l + plot_w / 2}" y="{height - 6}" '
        f'text-anchor="middle" font-size="11">time [s]</text>'
    )
    parts.append("</svg>")
    return "".join(parts)


def render_html_report(
    quality: QualityResults,
    convergence: ConvergenceResults | None = None,
    title: str = "Resource-Efficient PDR Scheduling — reproduction report",
) -> str:
    """The full report as an HTML string."""
    groups = quality.groups()
    makespans = {
        label: [dict(quality.group_means(attr))[g] for g in groups]
        for label, attr in (
            ("PA", "pa_makespan"),
            ("PA-R", "pa_r_makespan"),
            ("IS-1", "is1_makespan"),
            ("IS-5", "is5_makespan"),
        )
    }
    sections = [
        _svg_grouped_bars(
            "Figure 2 — average schedule execution time", groups, makespans,
            "makespan [us]",
        )
    ]
    for figure, base, cand, note in (
        ("Figure 3 — PA vs IS-1", "is1_makespan", "pa_makespan", "paper: +14.8% avg"),
        ("Figure 4 — PA vs IS-5", "is5_makespan", "pa_makespan", ""),
        ("Figure 5 — PA-R vs IS-5", "is5_makespan", "pa_r_makespan",
         "paper: +22.3% for >20 tasks"),
    ):
        improvements = quality.improvement(base, cand)
        sections.append(
            _svg_improvement_bars(
                f"{figure} ({note})" if note else figure,
                [g for g, _ in improvements],
                [imp.mean for _, imp in improvements],
                [imp.std for _, imp in improvements],
            )
        )
    if convergence is not None and convergence.series:
        sections.append(
            _svg_staircase(
                "Figure 6 — PA-R best-so-far makespan", convergence.series
            )
        )
    body = "\n".join(f"<div class='chart'>{svg}</div>" for svg in sections)
    table = html.escape(quality.render_table1())
    energy = html.escape(quality.render_energy())
    cache_stats = html.escape(quality.render_cache_stats())
    search_stats = html.escape(quality.render_search_stats())
    return f"""<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{html.escape(title)}</title>
<style>
 body {{ font-family: sans-serif; max-width: 720px; margin: 2em auto; }}
 .chart {{ margin: 1.5em 0; }}
 pre {{ background: #f6f6f6; padding: 1em; overflow-x: auto; }}
</style></head><body>
<h1>{html.escape(title)}</h1>
<p>Profile: <code>{html.escape(quality.config_profile)}</code>,
{len(quality.records)} instances.</p>
<h2>Table I — runtimes</h2>
<pre>{table}</pre>
{body}
<h2>Energy — PA schedule, ZedBoard power model</h2>
<pre>{energy}</pre>
<h2>Floorplanner cache statistics</h2>
<pre>{cache_stats}</pre>
<h2>IS-k search statistics</h2>
<pre>{search_stats}</pre>
</body></html>
"""


def write_html_report(
    quality: QualityResults,
    path: str | Path,
    convergence: ConvergenceResults | None = None,
) -> Path:
    """Write the report; returns the path."""
    path = Path(path)
    path.write_text(render_html_report(quality, convergence))
    return path
