"""Experiment harness, metrics, tables and Gantt rendering (Section VII)."""

from .export import (
    convergence_csv,
    export_all,
    improvement_csv,
    quality_records_csv,
)
from .gantt import render_gantt
from .metrics import Improvement, group_improvement, improvement_percent
from .online import (
    OnlineMetrics,
    OnlineSweepPoint,
    TenantMetrics,
    online_metrics,
    online_sweep,
    render_online_metrics,
    render_online_sweep,
)
from .parallel import parallel_map, resolve_jobs
from .robustness import (
    RobustnessMetrics,
    SweepPoint,
    fault_sweep,
    render_fault_sweep,
    robustness_metrics,
)
from .report import render_html_report, write_html_report
from .stats import ScheduleStats, schedule_stats
from .runner import (
    ConvergenceResults,
    ExperimentConfig,
    QualityResults,
    run_convergence,
    run_quality,
)
from .tables import render_series, render_table

__all__ = [
    "render_gantt",
    "convergence_csv",
    "export_all",
    "improvement_csv",
    "quality_records_csv",
    "Improvement",
    "group_improvement",
    "improvement_percent",
    "OnlineMetrics",
    "OnlineSweepPoint",
    "TenantMetrics",
    "online_metrics",
    "online_sweep",
    "render_online_metrics",
    "render_online_sweep",
    "parallel_map",
    "resolve_jobs",
    "RobustnessMetrics",
    "SweepPoint",
    "fault_sweep",
    "render_fault_sweep",
    "robustness_metrics",
    "ConvergenceResults",
    "ExperimentConfig",
    "QualityResults",
    "run_convergence",
    "run_quality",
    "ScheduleStats",
    "schedule_stats",
    "render_html_report",
    "write_html_report",
    "render_series",
    "render_table",
]
