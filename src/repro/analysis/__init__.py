"""Experiment harness, metrics, tables and Gantt rendering (Section VII)."""

from .export import (
    convergence_csv,
    export_all,
    improvement_csv,
    quality_records_csv,
)
from .gantt import render_gantt
from .metrics import Improvement, group_improvement, improvement_percent
from .parallel import parallel_map, resolve_jobs
from .robustness import (
    RobustnessMetrics,
    SweepPoint,
    fault_sweep,
    render_fault_sweep,
    robustness_metrics,
)
from .report import render_html_report, write_html_report
from .stats import ScheduleStats, schedule_stats
from .runner import (
    ConvergenceResults,
    ExperimentConfig,
    QualityResults,
    run_convergence,
    run_quality,
)
from .tables import render_series, render_table

__all__ = [
    "render_gantt",
    "convergence_csv",
    "export_all",
    "improvement_csv",
    "quality_records_csv",
    "Improvement",
    "group_improvement",
    "improvement_percent",
    "parallel_map",
    "resolve_jobs",
    "RobustnessMetrics",
    "SweepPoint",
    "fault_sweep",
    "render_fault_sweep",
    "robustness_metrics",
    "ConvergenceResults",
    "ExperimentConfig",
    "QualityResults",
    "run_convergence",
    "run_quality",
    "ScheduleStats",
    "schedule_stats",
    "render_html_report",
    "write_html_report",
    "render_series",
    "render_table",
]
