"""Improvement metrics used in the paper's Figures 3-5.

The paper reports, per group of task graphs, the *average improvement*
of an algorithm's schedule execution time against a baseline:
``(baseline - ours) / baseline`` in percent, with its standard
deviation across the group's instances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["Improvement", "improvement_percent", "group_improvement"]


def improvement_percent(baseline: float, candidate: float) -> float:
    """``(baseline - candidate) / baseline * 100`` — positive is better."""
    if baseline <= 0:
        raise ValueError("baseline makespan must be > 0")
    return (baseline - candidate) / baseline * 100.0


@dataclass(frozen=True)
class Improvement:
    """Group-level improvement statistics (one bar of Figures 3-5)."""

    mean: float
    std: float
    count: int
    minimum: float
    maximum: float

    def __str__(self) -> str:
        return f"{self.mean:+.1f}% (±{self.std:.1f}, n={self.count})"


def group_improvement(
    baselines: Sequence[float], candidates: Sequence[float]
) -> Improvement:
    """Per-instance improvements aggregated over a group."""
    if len(baselines) != len(candidates):
        raise ValueError("baseline/candidate lengths differ")
    if not baselines:
        raise ValueError("empty group")
    values = [
        improvement_percent(b, c) for b, c in zip(baselines, candidates)
    ]
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return Improvement(
        mean=mean,
        std=math.sqrt(variance),
        count=len(values),
        minimum=min(values),
        maximum=max(values),
    )
