"""Process-pool fan-out for the experiment harness.

The paper harness evaluates instances independently — per-instance
quality runs, per-size convergence runs, per-rate fault sweeps — so the
natural scaling axis is a worker pool over picklable work items.
:func:`parallel_map` is the single entry point: it preserves the input
order of the results (callers pre-sort their work items by a stable key
such as ``(group, name)``, making output deterministic regardless of
which worker finishes first), degrades gracefully to the serial path
when ``jobs <= 1``, when there is nothing to fan out, or when the
worker/items cannot be pickled, and recovers from a broken pool by
re-running the remaining items serially (workers are pure functions of
their item, so re-execution is safe).
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = ["parallel_map", "resolve_jobs", "ParallelItemFailure"]

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class ParallelItemFailure:
    """Structured record of one work item that could not be completed.

    Returned *in place of* the item's result when ``parallel_map`` runs
    with a per-item ``timeout``: the sweep keeps going and the caller
    decides what a hole in the results means, instead of one hung or
    crashing worker stalling (or aborting) the whole run.  ``phase``
    names the stage that gave up (``"serial-error"``: the in-process
    fallback after exhausted pool attempts also raised); ``error``
    carries the full cause chain (timeout/pool failure, then the
    serial exception).
    """

    index: int
    item: str  # repr of the work item (items may not be printable later)
    phase: str
    error: str
    attempts: int

    def __str__(self) -> str:
        return (
            f"item #{self.index} failed after {self.attempts} attempt(s) "
            f"[{self.phase}]: {self.error}"
        )


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` → 1, ``-1`` → CPUs."""
    if jobs is None or jobs == 0:
        return 1
    if jobs < 0:
        return max(1, os.cpu_count() or 1)
    return jobs


def _picklable(*objects) -> bool:
    try:
        for obj in objects:
            pickle.dumps(obj)
    except Exception:
        return False
    return True


def parallel_map(
    worker: Callable[[T], R],
    items: Iterable[T],
    jobs: int | None = 1,
    progress: Callable[[R], None] | None = None,
    timeout: float | None = None,
    retries: int = 1,
) -> list[R]:
    """Apply ``worker`` to every item, preserving item order.

    ``worker`` must be a module-level function and the items picklable
    for the pool path to engage; otherwise (or with ``jobs <= 1``) the
    map runs serially in-process.  ``progress`` is invoked in the
    caller's process, in item order, as results become available.
    Exceptions raised by ``worker`` propagate unchanged; a worker
    process dying (``BrokenProcessPool``) falls back to serially
    re-running whatever did not complete.

    ``timeout`` (seconds, pool path only) bounds each item's wall time:
    a timed-out item is resubmitted up to ``retries`` times, then
    re-run once on the serial in-process path; if that also fails the
    item's slot holds a :class:`ParallelItemFailure` instead of a
    result, and the map never raises for it.  Without a ``timeout``
    the original semantics are unchanged (one hung worker blocks the
    map — set a timeout for sweeps that must always terminate).
    """
    work: Sequence[T] = list(items)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(work) <= 1 or not _picklable(worker, work):
        return _serial_map(worker, work, progress)
    if timeout is not None:
        return _timed_pool_map(
            worker, work, jobs, progress, timeout, max(0, retries)
        )
    try:
        with ProcessPoolExecutor(max_workers=min(jobs, len(work))) as pool:
            futures = [pool.submit(worker, item) for item in work]
            results: list[R] = []
            for future in futures:
                result = future.result()
                if progress is not None:
                    progress(result)
                results.append(result)
            return results
    except (BrokenProcessPool, OSError, PermissionError):
        # Pool could not run (sandboxed env, dead worker, fork failure):
        # workers are pure, so redoing the whole map serially is safe.
        return _serial_map(worker, work, progress)


def _timed_pool_map(worker, work, jobs, progress, timeout, retries):
    """Pool map with a per-item deadline and bounded retry.

    The pool is shut down without waiting (``cancel_futures``) so hung
    workers cannot block the caller's exit; timed-out items get one
    serial in-process chance and then degrade to structured failures.
    ``cancel_futures`` only reaches futures still *queued* — a future
    that already started keeps its worker process alive arbitrarily
    long (it can outlive the caller) — so any future abandoned after a
    timeout forces the leftover worker processes to be terminated and
    reaped on the way out.
    """
    pool = ProcessPoolExecutor(max_workers=min(jobs, len(work)))
    results: list = []
    submitted: list = []

    def _submit(item):
        future = pool.submit(worker, item)
        submitted.append(future)
        return future

    try:
        futures = {i: _submit(item) for i, item in enumerate(work)}
        for index, item in enumerate(work):
            result = None
            cause: str | None = None  # None = pool attempt succeeded
            attempts = 0
            for attempt in range(retries + 1):
                attempts = attempt + 1
                try:
                    result = futures[index].result(timeout=timeout)
                    break
                except FutureTimeout:
                    cause = f"timed out after {timeout:g}s"
                    if attempt < retries:
                        cause = None
                        futures[index] = _submit(item)
                except (BrokenProcessPool, OSError, PermissionError) as exc:
                    cause = f"pool failure: {exc or exc.__class__.__name__}"
                    break
            if cause is not None:
                result = _serial_rescue(worker, item, index, attempts, cause)
            if progress is not None:
                progress(result)
            results.append(result)
        return results
    finally:
        # Snapshot before shutdown: it clears the pool's process table.
        processes = list((getattr(pool, "_processes", None) or {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        if any(not future.done() for future in submitted):
            _terminate_workers(processes)


def _terminate_workers(processes) -> None:
    """Kill and reap the worker processes of an already-shut-down pool.

    Only called when at least one submitted future never completed —
    i.e. a worker is hung past its deadline.  The pool is unusable
    either way, so taking down its (possibly idle) siblings is safe;
    joining afterwards prevents zombies.
    """
    for process in processes:
        try:
            process.kill()
        except Exception:
            pass
    for process in processes:
        try:
            process.join(timeout=5.0)
        except Exception:
            pass


def _serial_rescue(worker, item, index, attempts, cause):
    """Last-resort in-process run of one timed-out/broken-pool item."""
    try:
        return worker(item)
    except Exception as exc:
        return ParallelItemFailure(
            index=index,
            item=repr(item)[:200],
            phase="serial-error",
            error=f"{cause}; serial fallback raised: "
            f"{exc or exc.__class__.__name__}",
            attempts=attempts + 1,
        )


def _serial_map(worker, work, progress):
    results = []
    for item in work:
        result = worker(item)
        if progress is not None:
            progress(result)
        results.append(result)
    return results
