"""Process-pool fan-out for the experiment harness.

The paper harness evaluates instances independently — per-instance
quality runs, per-size convergence runs, per-rate fault sweeps — so the
natural scaling axis is a worker pool over picklable work items.
:func:`parallel_map` is the single entry point: it preserves the input
order of the results (callers pre-sort their work items by a stable key
such as ``(group, name)``, making output deterministic regardless of
which worker finishes first), degrades gracefully to the serial path
when ``jobs <= 1``, when there is nothing to fan out, or when the
worker/items cannot be pickled, and recovers from a broken pool by
re-running the remaining items serially (workers are pure functions of
their item, so re-execution is safe).
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = ["parallel_map", "resolve_jobs"]

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` → 1, ``-1`` → CPUs."""
    if jobs is None or jobs == 0:
        return 1
    if jobs < 0:
        return max(1, os.cpu_count() or 1)
    return jobs


def _picklable(*objects) -> bool:
    try:
        for obj in objects:
            pickle.dumps(obj)
    except Exception:
        return False
    return True


def parallel_map(
    worker: Callable[[T], R],
    items: Iterable[T],
    jobs: int | None = 1,
    progress: Callable[[R], None] | None = None,
) -> list[R]:
    """Apply ``worker`` to every item, preserving item order.

    ``worker`` must be a module-level function and the items picklable
    for the pool path to engage; otherwise (or with ``jobs <= 1``) the
    map runs serially in-process.  ``progress`` is invoked in the
    caller's process, in item order, as results become available.
    Exceptions raised by ``worker`` propagate unchanged; a worker
    process dying (``BrokenProcessPool``) falls back to serially
    re-running whatever did not complete.
    """
    work: Sequence[T] = list(items)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(work) <= 1 or not _picklable(worker, work):
        return _serial_map(worker, work, progress)
    try:
        with ProcessPoolExecutor(max_workers=min(jobs, len(work))) as pool:
            futures = [pool.submit(worker, item) for item in work]
            results: list[R] = []
            for future in futures:
                result = future.result()
                if progress is not None:
                    progress(result)
                results.append(result)
            return results
    except (BrokenProcessPool, OSError, PermissionError):
        # Pool could not run (sandboxed env, dead worker, fork failure):
        # workers are pure, so redoing the whole map serially is safe.
        return _serial_map(worker, work, progress)


def _serial_map(worker, work, progress):
    results = []
    for item in work:
        result = worker(item)
        if progress is not None:
            progress(result)
        results.append(result)
    return results
