"""Robustness metrics for fault-injected executions.

Turns the executor's structured event trace into the numbers a
fault-tolerance evaluation needs — recovery rate, makespan degradation
versus fault rate, repair latency — and provides :func:`fault_sweep`,
the parameterised study behind ``benchmarks/bench_fault_recovery.py``
and ``examples/fault_tolerance.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..model import Instance, Schedule
from ..sim import (
    FaultPlan,
    RecoveryPolicy,
    SimulationResult,
    TransientTaskFaults,
    simulate,
)
from .parallel import parallel_map
from .tables import render_table

__all__ = [
    "RobustnessMetrics",
    "SweepPoint",
    "robustness_metrics",
    "fault_sweep",
    "render_fault_sweep",
]


@dataclass(frozen=True)
class RobustnessMetrics:
    """Fault-tolerance summary of one simulated execution.

    ``recovery_rate`` counts *tasks* touched by at least one fault that
    still completed (1.0 when no task was ever hit);
    ``repair_latency`` is the simulated time between a repair-triggering
    region death and the first activity of the repaired plan (0 when no
    repair ran).
    """

    completed: bool
    makespan: float
    degradation: float  # relative makespan growth over the plan
    faults: int  # injected fault events (every failed attempt counts)
    faulted_tasks: int
    unrecovered_tasks: int
    recovery_rate: float
    retries: int
    fallbacks: int
    region_deaths: int
    repairs: int
    repair_latency: float

    def render(self) -> str:
        status = "completed" if self.completed else "FAILED"
        lines = [
            f"execution {status}: makespan {self.makespan:.1f} "
            f"({self.degradation * 100:+.1f}% over plan)",
            f"faults injected: {self.faults} "
            f"(tasks hit: {self.faulted_tasks}, retries: {self.retries})",
            f"recovery rate: {self.recovery_rate * 100:.0f}% "
            f"(fallbacks: {self.fallbacks}, repairs: {self.repairs}, "
            f"unrecovered: {self.unrecovered_tasks})",
        ]
        if self.region_deaths:
            lines.append(
                f"region deaths: {self.region_deaths}, "
                f"repair latency: {self.repair_latency:.1f}"
            )
        return "\n".join(lines)


def _faulted_task(subject: str) -> str:
    return subject.removeprefix("reconf:")


def robustness_metrics(result: SimulationResult) -> RobustnessMetrics:
    """Aggregate a fault-injected execution's trace into metrics."""
    trace = result.trace
    fault_events = trace.of("fault")
    faulted = {_faulted_task(e.subject) for e in fault_events}
    unrecovered = set(result.failed_tasks)
    recovery_rate = (
        1.0 if not faulted else 1.0 - len(faulted & unrecovered) / len(faulted)
    )
    repair_events = trace.of("repair")
    repair_latency = 0.0
    if repair_events:
        latencies = []
        for event in repair_events:
            after = [
                a.start for a in result.activities if a.start >= event.time
            ]
            latencies.append((min(after) if after else event.time) - event.time)
        repair_latency = sum(latencies) / len(latencies)
    return RobustnessMetrics(
        completed=result.completed,
        makespan=result.makespan,
        degradation=result.slippage,
        faults=len(fault_events),
        faulted_tasks=len(faulted),
        unrecovered_tasks=len(unrecovered),
        recovery_rate=recovery_rate,
        retries=len(trace.of("retry")),
        fallbacks=len(trace.of("fallback")),
        region_deaths=len(trace.of("region-death")),
        repairs=len(trace.of("repair")),
        repair_latency=repair_latency,
    )


@dataclass(frozen=True)
class SweepPoint:
    """Aggregated robustness at one transient fault rate."""

    rate: float
    trials: int
    completed_fraction: float
    recovery_rate: float  # mean over trials
    degradation: float  # mean relative makespan growth
    retries: float  # mean per trial


def _evaluate_sweep_rate(item) -> SweepPoint:
    """Pool worker: all trials at one fault rate (deterministic seeds)."""
    instance, schedule, rate, trials, seed, policy = item
    metrics = []
    for trial in range(trials):
        faults = (
            FaultPlan([TransientTaskFaults(rate=rate, seed=seed + trial)])
            if rate > 0
            else None
        )
        result = simulate(instance, schedule, faults=faults, recovery=policy)
        metrics.append(robustness_metrics(result))
    return SweepPoint(
        rate=rate,
        trials=trials,
        completed_fraction=sum(m.completed for m in metrics) / trials,
        recovery_rate=sum(m.recovery_rate for m in metrics) / trials,
        degradation=sum(m.degradation for m in metrics) / trials,
        retries=sum(m.retries for m in metrics) / trials,
    )


def fault_sweep(
    instance: Instance,
    schedule: Schedule,
    rates: Sequence[float] = (0.0, 0.05, 0.1, 0.2),
    trials: int = 5,
    seed: int = 0,
    policy: RecoveryPolicy | None = None,
    jobs: int = 1,
) -> list[SweepPoint]:
    """Makespan degradation and recovery rate vs transient fault rate.

    Each rate point is an independent, seeded batch of trials, so
    ``jobs`` fans the rates out over a process pool without changing
    any number in the result (points stay in ``rates`` order).
    """
    policy = policy or RecoveryPolicy()
    items = [
        (instance, schedule, rate, trials, seed, policy) for rate in rates
    ]
    return parallel_map(_evaluate_sweep_rate, items, jobs=jobs)


def render_fault_sweep(points: Sequence[SweepPoint]) -> str:
    return render_table(
        ["fault rate", "completed", "recovery", "slippage", "retries"],
        [
            [
                f"{p.rate * 100:.0f}%",
                f"{p.completed_fraction * 100:.0f}%",
                f"{p.recovery_rate * 100:.0f}%",
                f"{p.degradation * 100:+.1f}%",
                f"{p.retries:.1f}",
            ]
            for p in points
        ],
        title=f"transient-fault sweep ({points[0].trials if points else 0} trials/rate)",
    )
