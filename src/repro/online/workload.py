"""Dynamic multi-tenant workload model for the online runtime.

An :class:`ArrivalTrace` is the online analogue of a static
:class:`~repro.model.Instance`: a shared architecture plus a stream of
:class:`Job` arrivals, each carrying its own task graph, an absolute
deadline, a tenant label, a priority and an optional departure time
(the tenant withdraws the job; whatever has not started is cancelled).

Traces are plain data — JSON round-trippable (for trace files checked
into experiment configs) and content-hashable, like every other model
object in the repo.  :func:`generate_trace` builds deterministic
synthetic traces from a seed (same seed ⇒ bit-identical trace), with a
``slack`` knob that scales deadlines relative to each job's serial
fastest-implementation time; :func:`feasible_trace` picks generous
parameters so a fault-free run meets every deadline — the baseline the
CI online-smoke gate asserts against.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field

from ..benchgen import paper_instance, zedboard_architecture
from ..model import Architecture, TaskGraph, canonical_dumps, content_hash

__all__ = ["Job", "ArrivalTrace", "generate_trace", "feasible_trace"]


@dataclass(frozen=True)
class Job:
    """One tenant job: a task graph arriving at a point in time.

    ``deadline`` and ``departure`` are absolute simulation times (not
    offsets); ``priority`` orders preemption (strictly higher priority
    may preempt running work of lower priority).
    """

    job_id: str
    tenant: str
    taskgraph: TaskGraph
    arrival: float
    deadline: float | None = None
    priority: int = 0
    departure: float | None = None

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ValueError("job_id must be non-empty")
        if self.arrival < 0:
            raise ValueError(f"arrival must be >= 0, got {self.arrival}")
        if self.deadline is not None and self.deadline <= self.arrival:
            raise ValueError(
                f"deadline ({self.deadline}) must be after arrival "
                f"({self.arrival}) for job {self.job_id!r}"
            )
        if self.departure is not None and self.departure <= self.arrival:
            raise ValueError(
                f"departure ({self.departure}) must be after arrival "
                f"({self.arrival}) for job {self.job_id!r}"
            )
        if not self.taskgraph.task_ids:
            raise ValueError(f"job {self.job_id!r} has an empty task graph")

    def serial_fastest_time(self) -> float:
        """Sum of fastest-implementation times — a crude serial-work
        measure used to scale synthetic deadlines."""
        graph = self.taskgraph
        return sum(graph.task(tid).fastest().time for tid in graph.task_ids)

    def to_dict(self) -> dict:
        data = {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "taskgraph": self.taskgraph.to_dict(),
            "arrival": self.arrival,
            "priority": self.priority,
        }
        if self.deadline is not None:
            data["deadline"] = self.deadline
        if self.departure is not None:
            data["departure"] = self.departure
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Job":
        return cls(
            job_id=data["job_id"],
            tenant=data["tenant"],
            taskgraph=TaskGraph.from_dict(data["taskgraph"]),
            arrival=float(data["arrival"]),
            deadline=(
                float(data["deadline"]) if data.get("deadline") is not None else None
            ),
            priority=int(data.get("priority", 0)),
            departure=(
                float(data["departure"])
                if data.get("departure") is not None
                else None
            ),
        )


@dataclass
class ArrivalTrace:
    """A multi-tenant workload: jobs arriving on a shared architecture.

    Jobs are kept sorted by ``(arrival, job_id)`` so iteration order —
    and therefore the runtime's event order — is deterministic.
    """

    name: str
    architecture: Architecture
    jobs: list[Job] = field(default_factory=list)

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for job in self.jobs:
            if job.job_id in seen:
                raise ValueError(f"duplicate job id {job.job_id!r}")
            seen.add(job.job_id)
        self.jobs.sort(key=lambda j: (j.arrival, j.job_id))

    def tenants(self) -> list[str]:
        return sorted({job.tenant for job in self.jobs})

    @property
    def horizon(self) -> float:
        """Latest arrival — a lower bound on the run's busy window."""
        return max((job.arrival for job in self.jobs), default=0.0)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "architecture": self.architecture.to_dict(),
            "jobs": [job.to_dict() for job in self.jobs],
        }

    def to_json(self) -> str:
        return canonical_dumps(self.to_dict())

    def content_hash(self) -> str:
        return content_hash(self.to_dict())

    @classmethod
    def from_dict(cls, data: dict) -> "ArrivalTrace":
        return cls(
            name=data.get("name", ""),
            architecture=Architecture.from_dict(data["architecture"]),
            jobs=[Job.from_dict(j) for j in data.get("jobs", [])],
        )

    @classmethod
    def from_json(cls, text: str) -> "ArrivalTrace":
        return cls.from_dict(json.loads(text))


def generate_trace(
    seed: int,
    jobs: int = 6,
    tenants: int = 3,
    min_tasks: int = 3,
    max_tasks: int = 6,
    mean_interarrival: float = 40.0,
    slack: float = 3.0,
    high_priority_fraction: float = 0.25,
    departure_fraction: float = 0.0,
    graph_kind: str = "layered",
    architecture: Architecture | None = None,
    name: str | None = None,
) -> ArrivalTrace:
    """Deterministic synthetic arrival trace.

    Every random draw comes from one ``random.Random`` seeded on the
    full parameter tuple, so the same call always yields a bit-identical
    trace (the determinism gate depends on this).  ``slack`` scales each
    job's deadline relative to its serial fastest-implementation time;
    ``high_priority_fraction`` of jobs get priority 1 (preemption
    candidates); ``departure_fraction`` of jobs are withdrawn shortly
    after their deadline.
    """
    if jobs < 1:
        raise ValueError("need at least one job")
    if tenants < 1:
        raise ValueError("need at least one tenant")
    if not (1 <= min_tasks <= max_tasks):
        raise ValueError("need 1 <= min_tasks <= max_tasks")
    if mean_interarrival <= 0:
        raise ValueError("mean_interarrival must be > 0")
    if slack <= 1.0:
        raise ValueError("slack must be > 1 (deadline after serial work)")
    rng = random.Random(
        f"online-trace-{seed}-{jobs}-{tenants}-{min_tasks}-{max_tasks}-"
        f"{mean_interarrival}-{slack}-{graph_kind}"
    )
    arch = architecture or zedboard_architecture()
    out: list[Job] = []
    clock = 0.0
    for index in range(jobs):
        size = rng.randint(min_tasks, max_tasks)
        graph = paper_instance(
            tasks=size,
            seed=seed * 1000 + index,
            graph_kind=graph_kind,
            architecture=arch,
        ).taskgraph
        job_id = f"j{index}"
        tenant = f"tenant{rng.randrange(tenants)}"
        priority = 1 if rng.random() < high_priority_fraction else 0
        job = Job(
            job_id=job_id,
            tenant=tenant,
            taskgraph=graph,
            arrival=clock,
            priority=priority,
        )
        deadline = clock + slack * job.serial_fastest_time()
        departure = None
        if rng.random() < departure_fraction:
            departure = deadline + 0.25 * (deadline - clock)
        job = Job(
            job_id=job_id,
            tenant=tenant,
            taskgraph=graph,
            arrival=clock,
            deadline=deadline,
            priority=priority,
            departure=departure,
        )
        out.append(job)
        clock += rng.expovariate(1.0 / mean_interarrival)
    return ArrivalTrace(
        name=name or f"online-s{seed}-j{jobs}",
        architecture=arch,
        jobs=out,
    )


def feasible_trace(seed: int = 0, jobs: int = 5) -> ArrivalTrace:
    """A known-feasible trace: widely spaced arrivals and generous
    deadlines, so a fault-free run meets 100% of deadlines (asserted by
    ``benchmarks/bench_online.py`` and the CI online-smoke job)."""
    return generate_trace(
        seed=seed,
        jobs=jobs,
        tenants=2,
        min_tasks=3,
        max_tasks=5,
        mean_interarrival=120.0,
        slack=8.0,
        high_priority_fraction=0.2,
        name=f"online-feasible-s{seed}-j{jobs}",
    )
