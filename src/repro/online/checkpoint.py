"""Checkpoint cost model for preemptive partial reconfiguration.

Preempting a HW task means reading the region's state back out of the
fabric (configuration readback over the ICAP) and later restoring it
before execution continues.  Both costs scale with the region's
bitstream size — the same Eq. 1 size the architecture already charges
for configuration — divided by a readback/restore throughput, plus a
fixed per-operation overhead (driver latency, frame alignment).

Defaults tie both throughputs to the architecture's ``rec_freq`` so
checkpointing a region costs about as much as reconfiguring it, which
matches published readback-based preemption prototypes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..model import Architecture, ResourceVector

__all__ = ["CheckpointModel"]


@dataclass(frozen=True)
class CheckpointModel:
    """Save/restore cost model for region preemption.

    ``save_freq`` / ``restore_freq`` are throughputs in bits per time
    unit (``None`` = use the architecture's ``rec_freq``); ``overhead``
    is a fixed cost added to every save and every restore.
    """

    save_freq: float | None = None
    restore_freq: float | None = None
    overhead: float = 0.0

    def __post_init__(self) -> None:
        if self.save_freq is not None and self.save_freq <= 0:
            raise ValueError(f"save_freq must be > 0, got {self.save_freq}")
        if self.restore_freq is not None and self.restore_freq <= 0:
            raise ValueError(
                f"restore_freq must be > 0, got {self.restore_freq}"
            )
        if self.overhead < 0:
            raise ValueError(f"overhead must be >= 0, got {self.overhead}")

    def save_cost(self, arch: Architecture, resources: ResourceVector) -> float:
        """Time to read the region's state back out of the fabric."""
        freq = self.save_freq if self.save_freq is not None else arch.rec_freq
        return arch.bitstream_bits(resources) / freq + self.overhead

    def restore_cost(
        self, arch: Architecture, resources: ResourceVector
    ) -> float:
        """Time to write the saved state back before resuming."""
        freq = (
            self.restore_freq if self.restore_freq is not None else arch.rec_freq
        )
        return arch.bitstream_bits(resources) / freq + self.overhead
