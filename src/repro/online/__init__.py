"""Online multi-tenant scheduling runtime (arrivals, deadlines,
preemptive partial reconfiguration, always-on recovery ladder).

The static pipeline plans one instance ahead of time; this package
executes a *stream* of tenant jobs on a shared fabric: admission with
incremental re-planning, deadline tracking, priority preemption via
region checkpoint/restore, and the PR-1 recovery ladder promoted to
the common case.  See :mod:`repro.online.runtime` for the event model
and :mod:`repro.analysis.online` for metrics/reporting.
"""

from .checkpoint import CheckpointModel
from .runtime import (
    JobOutcome,
    OnlineResult,
    OnlineRuntime,
    RegionLog,
    TaskOutcome,
    run_online,
)
from .workload import ArrivalTrace, Job, feasible_trace, generate_trace

__all__ = [
    "ArrivalTrace",
    "CheckpointModel",
    "Job",
    "JobOutcome",
    "OnlineResult",
    "OnlineRuntime",
    "RegionLog",
    "TaskOutcome",
    "feasible_trace",
    "generate_trace",
    "run_online",
]
