"""Online multi-tenant scheduling runtime with preemptive partial
reconfiguration.

:class:`OnlineRuntime` executes an :class:`~repro.online.workload.ArrivalTrace`
— jobs arriving, departing and carrying deadlines — on one shared
partially-reconfigurable fabric.  It is two cooperating layers:

**Planner** (incremental re-planning).  On every arrival, completion
fault or death the planner places *only the affected tasks* instead of
re-solving the whole workload: it builds a throwaway projection
:class:`~repro.baselines.partial.PartialSchedule` seeded from the
current runtime state and explores placements speculatively on the
PR-5 apply/undo trail (place → evaluate → ``undo_to``), trying a
*pack* strategy (reuse loaded modules, queue on existing regions) and —
when the projected completion misses the deadline — a *spread*
strategy (prefer fresh regions for parallelism), keeping the better
one.  A live :class:`~repro.core.timing.IncrementalStarts` view over a
growing :class:`~repro.core.timing.PrecedenceGraph` tracks predicted
starts across runtime events (``add_node`` per admitted task,
serialization arcs per queue commitment, ``raise_lower_bound`` per
actual dispatch/completion), so deadline predictions stay current
without a full timing pass.  A **full** re-plan — every unstarted task
re-placed and the timing view rebuilt — runs only as guarded
escalation: when an admitted job is still predicted late after
preemption, or when enough stale arcs accumulated (re-assignments make
old serialization arcs pessimistic-only).  The incremental path is the
common case; ``benchmarks/bench_online.py`` asserts its share.

**Executor** (time-ordered dispatch).  The same discrete-event scheme
as :class:`repro.sim.executor._Engine`: among all runnable queue heads
the earliest derived start fires first (deterministic tie-break), with
external events (arrivals, departures, deadlines, region deaths)
interleaved at their instants.  Reconfigurations are derived at
dispatch — when a region's queue head needs a module other than the
one loaded — so module reuse needs no bookkeeping.  Transient task and
bitstream-load faults run the PR-1 recovery ladder, promoted to the
common case: bounded retry with backoff, then SW fallback, then
*online repair* (an incremental re-placement of the victim on the
surviving fabric); a feasible workload is never aborted.

**Preemption.**  A high-priority arrival predicted to miss its
deadline may preempt a running lower-priority HW task: the region's
state is checkpointed (readback cost from
:class:`~repro.online.checkpoint.CheckpointModel`), the victim's
completed work is banked as ``progress``, and its resume — restore
cost plus the remaining work — is re-placed reuse-aware (a region
still configured with its module is preferred, making the restore
reconfiguration-free).  Checkpointed progress survives even a later
region death; only in-flight work is ever re-executed.

Determinism: with the same trace, fault plan and seed the run is
bit-identical — no wall clock or RNG feeds any simulated quantity
(re-plan wall latencies are measured but kept outside the event log
and the deterministic metrics).  Projections are slightly optimistic
about a fresh region's first bitstream load (the executor charges it,
the projection does not) — deadline decisions lean on trace slack, and
the optimism never affects executed times.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field

from ..baselines.partial import PartialSchedule, RegionState
from ..core.timing import CycleError, IncrementalStarts, PrecedenceGraph
from ..model import (
    Implementation,
    Instance,
    ResourceVector,
    Task,
    TaskGraph,
)
from ..sim.events import ExecutionEvent, ExecutionTrace
from ..sim.executor import EPS, DeadlockError, SimulatedActivity
from ..sim.faults import FaultPlan
from ..sim.recovery import RecoveryPolicy
from .checkpoint import CheckpointModel
from .workload import ArrivalTrace, Job

__all__ = [
    "OnlineRuntime",
    "OnlineResult",
    "JobOutcome",
    "TaskOutcome",
    "RegionLog",
    "run_online",
]


# --------------------------------------------------------------------------
# result records
# --------------------------------------------------------------------------


@dataclass
class JobOutcome:
    """Per-job summary of one online run."""

    job_id: str
    tenant: str
    arrival: float
    deadline: float | None
    priority: int
    completed_at: float | None = None
    missed: bool = False
    departed: bool = False
    preemptions: int = 0
    predicted_completion: float = 0.0
    uids: list[str] = field(default_factory=list)

    @property
    def hit(self) -> bool:
        """Deadline met (jobs without deadlines count as hits)."""
        if self.completed_at is None:
            return False
        if self.deadline is None:
            return True
        return self.completed_at <= self.deadline + EPS


@dataclass
class TaskOutcome:
    """Per-task summary: what finally ran where, and what it cost."""

    uid: str
    job_id: str
    impl_name: str
    impl_time: float
    impl_kind: str  # "hw" | "sw"
    resource: str
    attempts: int
    preemptions: int
    restore_charged: list[float]  # restore cost actually paid per resume
    completed_at: float | None
    fallback: bool
    cancelled: bool
    skipped: bool
    failed: bool


@dataclass
class RegionLog:
    """Lifetime of one dynamically allocated region."""

    region_id: str
    resources: ResourceVector
    alloc_time: float
    freed_time: float | None  # None = alive at run end
    cause: str = ""  # "" | "reclaimed" | "died"


@dataclass
class OnlineResult:
    """Outcome of one online run — everything the validator and the
    metrics layer need, picklable for parallel sweeps."""

    trace_name: str
    activities: list[SimulatedActivity]
    trace: ExecutionTrace
    jobs: dict[str, JobOutcome]
    tasks: dict[str, TaskOutcome]
    regions: list[RegionLog]
    makespan: float
    replans: list[tuple[str, float]]  # (mode, wall seconds) — wall is
    # measurement-only and excluded from the deterministic event log

    @property
    def replan_incremental(self) -> int:
        return sum(1 for mode, _ in self.replans if mode == "incremental")

    @property
    def replan_full(self) -> int:
        return sum(1 for mode, _ in self.replans if mode == "full")

    @property
    def incremental_ratio(self) -> float:
        total = len(self.replans)
        return self.replan_incremental / total if total else 1.0

    def event_log(self) -> list[str]:
        """Canonical, deterministic rendering of the event trace —
        the bit-identity artifact the determinism gate compares."""
        return [
            f"{e.time:.6f}|{e.kind}|{e.subject}|{e.resource}|"
            f"{e.detail}|a={e.attempt}"
            for e in self.trace.chronological()
        ]


# --------------------------------------------------------------------------
# internal bookkeeping
# --------------------------------------------------------------------------


@dataclass
class _TaskRec:
    uid: str
    job_id: str
    impl: Implementation | None = None
    not_before: float = 0.0
    attempts: int = 0  # global attempt counter (fault determinism)
    reconf_attempts: int = 0
    progress: float = 0.0  # checkpointed completed work
    restore_due: float = 0.0  # restore cost to charge at next dispatch
    run_restore: float = 0.0  # restore charged in the current dispatch
    restore_charged: list[float] = field(default_factory=list)
    preemptions: int = 0
    fallback: bool = False
    resume_pending: bool = False
    dispatch_resource: str = ""


@dataclass
class _JobRec:
    job: Job
    uids: list[str]
    remaining: set[str]
    sinks: list[str]
    completed_at: float | None = None
    missed: bool = False
    departed: bool = False
    preemptions: int = 0
    predicted_completion: float = 0.0


@dataclass
class _RegionRec:
    id: str
    resources: ResourceVector
    alloc_time: float
    configured: str | None = None
    queue: list[str] = field(default_factory=list)
    free_at: float = 0.0
    last_used: float = 0.0
    freed_at: float | None = None
    freed_cause: str = ""
    running: tuple[str, float, float] | None = None  # (uid, start, end)

    @property
    def alive(self) -> bool:
        return self.freed_at is None


@dataclass(frozen=True)
class _Placement:
    uid: str
    impl: Implementation
    kind: str  # "hw" | "sw"
    resource: str | int  # region id or processor index
    start: float
    end: float
    created: ResourceVector | None  # new-region demand, if one was made
    reconf_gap: float  # projected reconfiguration inserted before it


class _NeedSpace(Exception):
    """A HW-only task found no fitting region and no fabric capacity."""

    def __init__(self, demand: ResourceVector):
        self.demand = demand
        super().__init__("insufficient fabric capacity")


class _Unplaceable(Exception):
    """No implementation of the task can run anywhere."""


# --------------------------------------------------------------------------
# the runtime
# --------------------------------------------------------------------------


class OnlineRuntime:
    """One online execution of an arrival trace (see module docstring)."""

    def __init__(
        self,
        trace: ArrivalTrace,
        faults: FaultPlan | None = None,
        policy: RecoveryPolicy | None = None,
        checkpoint: CheckpointModel | None = None,
        preemption: bool = True,
        full_replan_threshold: int = 12,
        on_event=None,
    ) -> None:
        if faults is not None and not faults:
            faults = None
        self.src = trace
        self.arch = trace.architecture
        self.faults = faults
        self.policy = policy or RecoveryPolicy()
        self.ckpt = checkpoint or CheckpointModel()
        self.preemption = preemption
        self.full_replan_threshold = max(1, full_replan_threshold)
        self.on_event = on_event

        self.workload = TaskGraph(name=f"online:{trace.name}")
        self.instance = Instance(
            architecture=self.arch,
            taskgraph=self.workload,
            name=f"online:{trace.name}",
        )

        self.jobs: dict[str, _JobRec] = {}
        self.tasks: dict[str, _TaskRec] = {}
        self.regions: dict[str, _RegionRec] = {}
        self.region_counter = 0
        self.proc_queue: list[list[str]] = [
            [] for _ in range(self.arch.processors)
        ]
        self.proc_free: list[float] = [0.0] * self.arch.processors
        self.ctrl_free: list[float] = [0.0] * self.arch.reconfigurators
        self.pool: list[str] = []

        self.task_start: dict[str, float] = {}
        self.task_end: dict[str, float] = {}
        self.plan_end: dict[str, float] = {}
        self.resolved: dict[str, float] = {}  # failed / skipped / cancelled
        self.failed: set[str] = set()
        self.skipped: set[str] = set()
        self.cancelled: set[str] = set()

        self.activities: list[SimulatedActivity] = []
        self.trace = ExecutionTrace()
        self.replans: list[tuple[str, float]] = []
        self.stale_arcs = 0

        # live timing view: grows a node per admitted task
        self.exe: dict[str, float] = {}
        self.pgraph = PrecedenceGraph([])
        self.inc: IncrementalStarts = self.pgraph.begin_incremental(self.exe)

        # external event stream, fully known upfront (deterministic)
        self._job_index = {job.job_id: job for job in trace.jobs}
        self.events = self._external_events()
        self.cursor = 0

    # -- external events -----------------------------------------------------

    def _external_events(self) -> list[tuple[float, int, str]]:
        out: list[tuple[float, int, str]] = []
        for job in self.src.jobs:
            out.append((job.arrival, 0, job.job_id))
            if job.departure is not None:
                out.append((job.departure, 2, job.job_id))
            if job.deadline is not None:
                out.append((job.deadline, 3, job.job_id))
        if self.faults is not None:
            for t, rid in self.faults.region_deaths():
                out.append((t, 1, rid))
        return sorted(out)

    # -- event emission ------------------------------------------------------

    def _emit(
        self,
        time: float,
        kind: str,
        subject: str,
        resource: str = "",
        detail: str = "",
        attempt: int = 0,
    ) -> None:
        event = ExecutionEvent(
            time=time,
            kind=kind,
            subject=subject,
            resource=resource,
            detail=detail,
            attempt=attempt,
        )
        self.trace.add(event)
        if self.on_event is not None:
            self.on_event(event)

    # -- fabric accounting ---------------------------------------------------

    def _used(self) -> ResourceVector:
        used = ResourceVector.zero()
        for region in self.regions.values():
            if region.alive:
                used = used + region.resources
        return used

    def _available(self) -> ResourceVector:
        used = self._used()
        return ResourceVector(
            {
                r: max(0, self.arch.max_res[r] - used[r])
                for r in self.arch.max_res
            }
        )

    def _alive_regions(self) -> list[_RegionRec]:
        return [
            self.regions[rid]
            for rid in sorted(self.regions)
            if self.regions[rid].alive
        ]

    def _reclaim(self, demand: ResourceVector, now: float) -> bool:
        """LRU-reclaim idle regions until ``demand`` fits the fabric."""
        quantized = self.arch.quantize_region(demand)
        if quantized.fits_in(self._available()):
            return True
        idle = [
            r
            for r in self._alive_regions()
            if not r.queue
            and r.free_at <= now + EPS
            and (r.running is None or r.running[2] <= now + EPS)
        ]
        idle.sort(key=lambda r: (r.last_used, r.id))
        for region in idle:
            region.freed_at = now
            region.freed_cause = "reclaimed"
            self._emit(
                now,
                "region-reclaim",
                region.id,
                resource=region.id,
                detail="idle fabric reclaimed",
            )
            if quantized.fits_in(self._available()):
                return True
        return quantized.fits_in(self._available())

    # -- timing-view helpers -------------------------------------------------

    def _projected_end(self, uid: str) -> float:
        if uid in self.task_end:
            return self.task_end[uid]
        base = self.plan_end.get(uid, 0.0)
        if uid in self.inc.est and uid in self.exe:
            base = max(base, self.inc.est[uid] + self.exe[uid])
        return base

    def _predicted_completion(self, job_id: str) -> float:
        jr = self.jobs[job_id]
        return max(
            (self._projected_end(uid) for uid in jr.sinks), default=0.0
        )

    def _raise_bound(self, uid: str, bound: float) -> None:
        if uid in self.inc.est:
            self.inc.raise_lower_bound(uid, bound)

    def _rebuild_view(self) -> None:
        """Escalation path: fresh timing view from the current queues.

        Drops every stale arc (superseded serialization orders, stale
        execution times after fallbacks) by rebuilding the graph over
        the unfinished tasks with their *current* durations and queue
        orders."""
        self.pgraph.end_incremental()
        pending = [
            uid
            for uid in self.tasks
            if uid not in self.task_end and uid not in self.resolved
        ]
        self.exe = {}
        bounds: dict[str, float] = {}
        for uid in pending:
            rec = self.tasks[uid]
            impl_time = rec.impl.time if rec.impl is not None else 0.0
            self.exe[uid] = (
                rec.restore_due + max(0.0, impl_time - rec.progress)
            )
            lb = rec.not_before
            for pred in self.workload.predecessors(uid):
                if pred in self.task_end:
                    lb = max(lb, self.task_end[pred])
            bounds[uid] = lb
        self.pgraph = PrecedenceGraph(pending)
        keep = set(pending)
        for src, dst in self.workload.edges():
            if src in keep and dst in keep:
                self.pgraph.add_edge(src, dst, self.workload.comm_cost(src, dst))
        queues: list[list[str]] = [r.queue for r in self._alive_regions()]
        queues.extend(self.proc_queue)
        for queue in queues:
            for prev, nxt in zip(queue, queue[1:]):
                try:
                    self.pgraph.add_edge(prev, nxt, 0.0)
                except CycleError:
                    pass
        self.inc = self.pgraph.begin_incremental(self.exe, bounds)
        self.stale_arcs = 0

    # -- the planner ---------------------------------------------------------

    def _projection(self, exclude: set[str]) -> PartialSchedule:
        """A throwaway :class:`PartialSchedule` mirroring current state.

        Region free times / loaded modules, processor frees and the
        controller horizon come from the executor's committed state
        plus the timing view's projected ends of already-queued tasks;
        ``exclude`` names the tasks about to be (re-)placed, whose old
        commitments must not leak into the projection."""
        ps = PartialSchedule(self.instance)
        ps._region_counter = self.region_counter
        ps.proc_free[:] = self.proc_free
        for p, queue in enumerate(self.proc_queue):
            tail = [uid for uid in queue if uid not in exclude]
            if tail:
                ps.proc_free[p] = max(
                    ps.proc_free[p], self._projected_end(tail[-1])
                )
        for c, busy_until in enumerate(self.ctrl_free):
            if busy_until > 0.0:
                ps.controllers[c] = [(0.0, busy_until)]
        used = ResourceVector.zero()
        for region in self._alive_regions():
            tail = [uid for uid in region.queue if uid not in exclude]
            free = region.free_at
            loaded = region.configured
            if tail:
                free = max(free, self._projected_end(tail[-1]))
                last = self.tasks[tail[-1]].impl
                if last is not None:
                    loaded = last.name
            ps.regions[region.id] = RegionState(
                id=region.id,
                resources=region.resources,
                free_time=free,
                loaded=loaded,
            )
            used = used + region.resources
        ps.used = used
        for uid in self.task_end:
            ps.end[uid] = self.task_end[uid]
        for uid, when in self.resolved.items():
            # failed/cancelled predecessors never block a projection —
            # their dependents are doomed/cancelled before planning.
            ps.end.setdefault(uid, when)
        for queue in [r.queue for r in self._alive_regions()]:
            for uid in queue:
                if uid not in exclude:
                    ps.end[uid] = self._projected_end(uid)
        for queue in self.proc_queue:
            for uid in queue:
                if uid not in exclude:
                    ps.end[uid] = self._projected_end(uid)
        for uid in self.pool:
            if uid not in exclude:
                ps.end[uid] = self._projected_end(uid)
        return ps

    def _place_one(
        self, ps: PartialSchedule, uid: str, now: float, bias: str
    ) -> _Placement:
        """Place one task speculatively and commit the best candidate.

        Every candidate is evaluated by place → read finish → ``undo_to``
        on the projection's trail; the winner is then re-applied.  The
        ``bias`` orders ties: ``pack`` prefers existing regions (module
        reuse), ``spread`` prefers fresh regions (parallelism)."""
        task = self.workload.task(uid)
        rec = self.tasks[uid]
        best: tuple[tuple, Implementation, str, str | int, bool] | None = None
        hw_blocked: ResourceVector | None = None
        hw_impls = sorted(
            task.hw_implementations, key=lambda i: (i.time, i.name)
        )
        if rec.progress > 0.0 and rec.impl is not None:
            # Checkpointed state is tied to the implementation it was
            # saved from — a resume may only re-place the same module.
            hw_impls = [i for i in hw_impls if i.name == rec.impl.name]
        if not rec.fallback:
            for state in (ps.regions[rid] for rid in sorted(ps.regions)):
                for impl in hw_impls:
                    if not impl.resources.fits_in(state.resources):
                        continue
                    mark = ps.trail_mark()
                    end = self._speculate_hw(ps, uid, rec, impl, state.id)
                    ps.undo_to(mark)
                    cls = 0 if bias == "pack" else 1
                    key = (end, cls, 0, state.id, impl.name)
                    if best is None or key < best[0]:
                        best = (key, impl, "hw", state.id, False)
                    break  # fastest fitting impl per region
            for impl in hw_impls:
                if ps.can_create_region(impl.resources):
                    mark = ps.trail_mark()
                    state = ps.create_region(impl.resources)
                    end = self._speculate_hw(ps, uid, rec, impl, state.id)
                    ps.undo_to(mark)
                    cls = 1 if bias == "pack" else 0
                    key = (end, cls, 1, state.id, impl.name)
                    if best is None or key < best[0]:
                        best = (key, impl, "hw", state.id, True)
                    break
                hw_blocked = impl.resources
        if task.has_sw:
            impl = task.fastest_sw()
            for p in range(self.arch.processors):
                mark = ps.trail_mark()
                end = self._speculate_sw(ps, uid, rec, impl, p)
                ps.undo_to(mark)
                key = (end, 2, 2, f"P{p}", impl.name)
                if best is None or key < best[0]:
                    best = (key, impl, "sw", p, False)
        if best is None:
            if hw_blocked is not None:
                raise _NeedSpace(hw_blocked)
            raise _Unplaceable(uid)
        _, impl, kind, where, created = best
        demand: ResourceVector | None = None
        if kind == "hw":
            if created:
                state = ps.create_region(impl.resources)
                where = state.id
                demand = state.resources
            before = len(ps.reconfigurations)
            end = self._speculate_hw(ps, uid, rec, impl, where)
            gap = 0.0
            if len(ps.reconfigurations) > before:
                rc = ps.reconfigurations[-1]
                gap = rc.end - rc.start
            return _Placement(
                uid, impl, "hw", where, ps.start[uid], end, demand, gap
            )
        end = self._speculate_sw(ps, uid, rec, impl, where)
        return _Placement(
            uid, impl, "sw", where, ps.start[uid], end, None, 0.0
        )

    def _speculate_hw(self, ps, uid, rec, impl, region_id) -> float:
        """place_hw with the task's *online* duration (restore + the
        work remaining after checkpointed progress) and its not-before
        bound (arrival / fault instant / checkpoint completion)."""
        stretched = self._online_impl(rec, impl)
        end = ps.place_hw(uid, stretched, region_id)
        return self._apply_not_before(ps, uid, rec, end, "hw", region_id)

    def _speculate_sw(self, ps, uid, rec, impl, processor) -> float:
        stretched = self._online_impl(rec, impl)
        end = ps.place_sw(uid, stretched, processor)
        return self._apply_not_before(ps, uid, rec, end, "sw", processor)

    def _online_impl(self, rec: _TaskRec, impl: Implementation) -> Implementation:
        duration = rec.restore_due + max(0.0, impl.time - rec.progress)
        if abs(duration - impl.time) <= EPS:
            return impl
        if impl.is_hw:
            return Implementation.hw(impl.name, duration, impl.resources)
        return Implementation.sw(impl.name, duration)

    def _apply_not_before(self, ps, uid, rec, end, kind, target) -> float:
        """Shift a projected placement that starts before the task may
        dispatch (ready predecessors but an arrival/fault bound).  The
        resource's projected free time moves with it so later tasks
        queued behind it stay consistent (undo restores the pre-place
        values either way)."""
        if ps.start[uid] + EPS < rec.not_before:
            shift = rec.not_before - ps.start[uid]
            ps.start[uid] += shift
            ps.end[uid] += shift
            end += shift
            if kind == "hw":
                ps.regions[target].free_time = end
            else:
                ps.proc_free[target] = end
        return end

    def _plan(
        self,
        uids: list[str],
        now: float,
        deadline: float | None,
    ) -> tuple[list[_Placement], float]:
        """One planning pass: place ``uids`` (in the given order) on a
        projection, exploring pack-vs-spread on the undo trail.

        Returns the placements and the projected completion of the
        placed set.  Raises :class:`_NeedSpace` only after reclamation
        failed too; individual HW-only tasks that cannot be placed are
        reported by exclusion (caller handles them)."""
        for round_ in range(2):
            ps = self._projection(exclude=set(uids))
            ps.trail_mark()
            try:
                placements = [
                    self._place_one(ps, uid, now, "pack") for uid in uids
                ]
            except _NeedSpace as exc:
                if round_ == 0 and self._reclaim(exc.demand, now):
                    continue
                raise
            completion = max((pl.end for pl in placements), default=now)
            if deadline is None or completion <= deadline + EPS:
                return placements, completion
            # predicted late: rewind the whole pass on the trail and
            # retry with the parallelism-biased strategy.
            ps.undo_to(0)
            try:
                spread = [
                    self._place_one(ps, uid, now, "spread") for uid in uids
                ]
            except _NeedSpace:
                return placements, completion
            spread_completion = max((pl.end for pl in spread), default=now)
            if spread_completion + EPS < completion:
                return spread, spread_completion
            return placements, completion
        raise AssertionError("unreachable")  # pragma: no cover

    def _is_descendant(self, ancestor: str, node: str) -> bool:
        stack = [ancestor]
        seen = {ancestor}
        while stack:
            cur = stack.pop()
            for succ in self.workload.successors(cur):
                if succ == node:
                    return True
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return False

    def _commit(self, placements: list[_Placement], now: float) -> None:
        """Apply a plan: create regions, queue tasks, grow the view."""
        for pl in placements:
            rec = self.tasks[pl.uid]
            rec.impl = pl.impl
            rec.not_before = max(rec.not_before, now)
            if pl.kind == "hw":
                rid = str(pl.resource)
                if rid not in self.regions:
                    region = _RegionRec(
                        id=rid,
                        resources=pl.created
                        if pl.created is not None
                        else self.arch.quantize_region(pl.impl.resources),
                        alloc_time=now,
                        free_at=now,
                        last_used=now,
                    )
                    self.regions[rid] = region
                    self.region_counter += 1
                    self._emit(
                        now,
                        "region-alloc",
                        rid,
                        resource=rid,
                        detail=f"for {pl.uid}",
                    )
                queue = self.regions[rid].queue
            else:
                queue = self.proc_queue[int(pl.resource)]
            # Insert before any workload descendant already queued here —
            # a re-placed task appended after its own successor would
            # deadlock the dispatch order.
            index = len(queue)
            for i, other in enumerate(queue):
                if self._is_descendant(pl.uid, other):
                    index = i
                    break
            queue.insert(index, pl.uid)
            prev = queue[index - 1] if index > 0 else None

            if pl.uid not in self.pgraph:
                self.exe[pl.uid] = pl.end - pl.start
                self.pgraph.add_node(pl.uid)
            else:
                self.stale_arcs += 1  # duration/order may have changed
            for pred in self.workload.predecessors(pl.uid):
                if pred in self.pgraph:
                    try:
                        self.pgraph.add_edge(
                            pred, pl.uid, self.workload.comm_cost(pred, pl.uid)
                        )
                    except CycleError:  # pragma: no cover - defensive
                        self.stale_arcs += 1
            if prev is not None and prev in self.pgraph:
                try:
                    self.pgraph.add_edge(prev, pl.uid, pl.reconf_gap)
                except CycleError:
                    self.stale_arcs += 1
            self._raise_bound(pl.uid, pl.start)
            self.plan_end[pl.uid] = pl.end

    def _record_replan(
        self, mode: str, now: float, subject: str, wall: float, detail: str
    ) -> None:
        self.replans.append((mode, wall))
        self._emit(now, "replan", subject, detail=f"{mode}; {detail}")

    # -- admission, departure, deadline, death -------------------------------

    def _process_arrival(self, job_id: str) -> None:
        job = self._job_index[job_id]
        now = job.arrival
        self._emit(
            now,
            "arrival",
            job.job_id,
            detail=f"tenant={job.tenant} priority={job.priority} "
            f"tasks={len(job.taskgraph.task_ids)}",
        )
        uids: list[str] = []
        order = job.taskgraph.topological_order()
        for tid in order:
            task = job.taskgraph.task(tid)
            uid = f"{job.job_id}:{tid}"
            self.workload.add_task(Task.of(uid, task.implementations))
            self.tasks[uid] = _TaskRec(
                uid=uid, job_id=job.job_id, not_before=now
            )
            uids.append(uid)
        for src, dst in job.taskgraph.edges():
            self.workload.add_dependency(
                f"{job.job_id}:{src}",
                f"{job.job_id}:{dst}",
                comm=job.taskgraph.comm_cost(src, dst),
            )
        jr = _JobRec(
            job=job,
            uids=uids,
            remaining=set(uids),
            sinks=[f"{job.job_id}:{tid}" for tid in job.taskgraph.sinks()],
        )
        self.jobs[job.job_id] = jr

        t0 = _time.perf_counter()
        mode = "incremental"
        extra: list[str] = []
        if self.stale_arcs > self.full_replan_threshold:
            mode = "full"  # guarded escalation: too many stale arcs
        try:
            if mode == "incremental":
                placements, completion = self._plan(uids, now, job.deadline)
                late = (
                    job.deadline is not None
                    and completion > job.deadline + EPS
                )
                if late and self.preemption and job.priority > 0:
                    victim = self._pick_victim(job, now)
                    if victim is not None:
                        self._preempt(victim[0], victim[1], now, job.job_id)
                        extra = [victim[1]]
                        placements, _ = self._plan(
                            uids + extra, now, job.deadline
                        )
                        new = set(uids)
                        completion = max(
                            (pl.end for pl in placements if pl.uid in new),
                            default=now,
                        )
                        late = completion > job.deadline + EPS
                if late and self._has_unstarted_others(uids + extra):
                    mode = "full"  # guarded escalation: still late
            if mode == "full":
                placements, completion = self._full_replan_placements(
                    uids + extra, now, job.deadline
                )
        except (_NeedSpace, _Unplaceable):
            placements, completion = self._salvage_plan(uids + extra, now)
        self._commit(placements, now)
        if mode == "full":
            self._rebuild_view()
        jr.predicted_completion = completion
        wall = _time.perf_counter() - t0
        self._record_replan(
            mode,
            now,
            job.job_id,
            wall,
            f"predicted completion {completion:.6f}",
        )
        predicted_late = (
            job.deadline is not None and completion > job.deadline + EPS
        )
        self._emit(
            now,
            "admit",
            job.job_id,
            detail=(
                f"predicted {'late' if predicted_late else 'on-time'}"
                f" ({completion:.6f})"
            ),
        )

    def _salvage_plan(
        self, uids: list[str], now: float
    ) -> tuple[list[_Placement], float]:
        """Degraded admission: place what can be placed, task by task;
        HW-only tasks with no fabric fail (dooming their descendants) —
        but a workload with SW implementations is never aborted."""
        placements: list[_Placement] = []
        for uid in uids:
            if uid in self.resolved:
                continue  # doomed by an earlier failure in this batch
            try:
                pls, _ = self._plan([uid], now, None)
                placements.extend(pls)
                self._commit(pls, now)
            except (_NeedSpace, _Unplaceable):
                self._fail_task(uid, now, "no placement on surviving fabric")
        # already committed piecewise; return empty so the caller's
        # commit is a no-op, with the completion over what was placed
        completion = max((pl.end for pl in placements), default=now)
        return [], completion

    def _has_unstarted_others(self, exclude: list[str]) -> bool:
        skip = set(exclude)
        for region in self._alive_regions():
            if any(uid not in skip for uid in region.queue):
                return True
        for queue in self.proc_queue:
            if any(uid not in skip for uid in queue):
                return True
        return any(uid not in skip for uid in self.pool)

    def _full_replan_placements(
        self, new_uids: list[str], now: float, deadline: float | None
    ) -> tuple[list[_Placement], float]:
        """Guarded escalation: pull every unstarted task off its queue
        and re-place the whole pending set in EDF order."""
        pending: list[str] = list(new_uids)
        for region in self._alive_regions():
            pending.extend(region.queue)
            region.queue.clear()
        for queue in self.proc_queue:
            pending.extend(queue)
            queue.clear()
        pending.extend(self.pool)
        self.pool.clear()
        seen: set[str] = set()
        ordered: list[str] = []
        for uid in pending:
            if uid not in seen:
                seen.add(uid)
                ordered.append(uid)

        def edf_key(uid: str) -> tuple:
            jr = self.jobs[self.tasks[uid].job_id]
            d = jr.job.deadline
            topo = jr.uids.index(uid)
            return (
                d if d is not None else float("inf"),
                jr.job.arrival,
                jr.job.job_id,
                topo,
            )

        ordered.sort(key=edf_key)
        placements, _ = self._plan(ordered, now, None)
        completion = max(
            (pl.end for pl in placements if pl.uid in set(new_uids)),
            default=now,
        )
        return placements, completion

    def _process_departure(self, job_id: str, now: float) -> None:
        jr = self.jobs.get(job_id)
        if jr is None or jr.departed:
            return
        jr.departed = True
        self._emit(now, "departure", job_id, detail=f"tenant={jr.job.tenant}")
        for uid in jr.uids:
            if uid in self.task_end or uid in self.resolved:
                continue  # finished or running-to-completion work stays
            self._dequeue(uid)
            self.resolved[uid] = now
            self.cancelled.add(uid)
            jr.remaining.discard(uid)
            self._emit(now, "cancel", uid, detail="tenant departed")

    def _process_deadline(self, job_id: str, now: float) -> None:
        jr = self.jobs.get(job_id)
        if jr is None or jr.departed:
            return
        if jr.completed_at is not None and jr.completed_at <= now + EPS:
            return
        jr.missed = True
        self._emit(
            now,
            "deadline-miss",
            job_id,
            detail=(
                f"completed_at={jr.completed_at:.6f}"
                if jr.completed_at is not None
                else "unfinished"
            ),
        )

    def _process_region_death(self, rid: str, now: float) -> None:
        region = self.regions.get(rid)
        if region is None or not region.alive:
            self._emit(
                now,
                "region-death",
                rid,
                resource=rid,
                detail="no live region with this id; fault fizzles",
            )
            return
        region.freed_at = now
        region.freed_cause = "died"
        self._emit(now, "region-death", rid, resource=rid)
        victims: list[str] = []
        running = region.running
        if running is not None and running[2] > now + EPS:
            uid = running[0]
            self._truncate_running(region, uid, now, lose_work=True)
            victims.append(uid)
        region.running = None
        victims.extend(region.queue)
        region.queue.clear()
        for uid in victims:
            self._emit(
                now, "fault", uid, rid, detail=f"region {rid} died"
            )
        replaced: list[str] = []
        for uid in sorted(victims):
            rec = self.tasks[uid]
            task = self.workload.task(uid)
            rec.not_before = max(rec.not_before, now)
            if self.policy.sw_fallback and task.has_sw:
                self._to_fallback(uid, now, f"region {rid} died")
            elif self.policy.repair and task.has_hw:
                replaced.append(uid)
            else:
                self._fail_task(uid, now, f"region {rid} died; no recovery")
        if replaced:
            self._replace_hw_batch(replaced, now, f"region {rid} died")

    # -- recovery ladder -----------------------------------------------------

    def _to_fallback(self, uid: str, now: float, cause: str) -> None:
        rec = self.tasks[uid]
        rec.fallback = True
        rec.impl = self.workload.task(uid).fastest_sw()
        rec.progress = 0.0  # a SW re-run cannot restore a HW checkpoint
        rec.restore_due = 0.0
        rec.resume_pending = False
        rec.not_before = max(rec.not_before, now)
        self.pool.append(uid)
        self._emit(now, "fallback", uid, detail=cause)
        self._raise_bound(uid, now)
        self.stale_arcs += 1

    def _replace_hw_batch(self, uids: list[str], now: float, cause: str) -> None:
        """Online repair: incrementally re-place HW-only victims."""
        t0 = _time.perf_counter()
        placed: list[str] = []
        for uid in uids:
            if uid in self.resolved:
                continue  # doomed by an earlier failure in this batch
            try:
                pls, _ = self._plan([uid], now, None)
                self._commit(pls, now)
                placed.append(uid)
            except (_NeedSpace, _Unplaceable):
                self._fail_task(uid, now, f"{cause}; no re-placement")
        if placed:
            self._record_replan(
                "incremental",
                now,
                ",".join(placed),
                _time.perf_counter() - t0,
                cause,
            )

    def _fail_task(self, uid: str, now: float, cause: str) -> None:
        self._dequeue(uid)
        self.resolved[uid] = now
        self.failed.add(uid)
        self._emit(now, "failed", uid, detail=cause)
        self._doom_descendants(uid, now)

    def _doom_descendants(self, uid: str, now: float) -> None:
        stack = list(self.workload.successors(uid))
        while stack:
            cur = stack.pop()
            if cur in self.resolved or cur in self.task_end:
                continue
            self._dequeue(cur)
            self.resolved[cur] = now
            self.skipped.add(cur)
            # deliberately kept in the job's ``remaining`` set: a job
            # with failed/skipped tasks must never report completion
            self._emit(now, "skip", cur, detail="ancestor failed")
            stack.extend(self.workload.successors(cur))

    def _dequeue(self, uid: str) -> None:
        for region in self.regions.values():
            if uid in region.queue:
                region.queue.remove(uid)
        for queue in self.proc_queue:
            if uid in queue:
                queue.remove(uid)
        if uid in self.pool:
            self.pool.remove(uid)

    # -- preemption ----------------------------------------------------------

    def _pick_victim(
        self, job: Job, now: float
    ) -> tuple[str, str] | None:
        """Deterministically choose ``(region_id, uid)`` to preempt: a
        running HW task of a strictly lower-priority job, in a region
        some arriving HW implementation could use."""
        fits_someone = [
            impl.resources
            for tid in job.taskgraph.task_ids
            for impl in job.taskgraph.task(tid).hw_implementations
        ]
        candidates: list[tuple[int, str, str]] = []
        for region in self._alive_regions():
            running = region.running
            if running is None or running[2] <= now + EPS:
                continue
            uid, start, _ = running
            rec = self.tasks[uid]
            if now - start < rec.run_restore - EPS:
                continue  # cannot checkpoint while a restore is in flight
            victim_jr = self.jobs[rec.job_id]
            if victim_jr.job.priority >= job.priority:
                continue
            if not any(
                demand.fits_in(region.resources) for demand in fits_someone
            ):
                continue
            candidates.append((victim_jr.job.priority, region.id, uid))
        if not candidates:
            return None
        _, rid, uid = min(candidates)
        return rid, uid

    def _preempt(
        self, rid: str, uid: str, now: float, for_job: str
    ) -> None:
        region = self.regions[rid]
        rec = self.tasks[uid]
        start = self._truncate_running(region, uid, now, lose_work=False)
        executed = max(0.0, now - start)
        useful = max(0.0, executed - rec.run_restore)
        rec.progress = min(
            rec.progress + useful,
            (rec.impl.time if rec.impl is not None else useful) - EPS,
        )
        save = self.ckpt.save_cost(self.arch, region.resources)
        restore = self.ckpt.restore_cost(self.arch, region.resources)
        rec.restore_due = restore
        rec.not_before = now + save
        rec.resume_pending = True
        rec.preemptions += 1
        jr = self.jobs[rec.job_id]
        jr.preemptions += 1
        jr.remaining.add(uid)
        self._emit(
            now, "preempt", uid, rid, detail=f"for {for_job}"
        )
        self._emit(
            now,
            "checkpoint",
            uid,
            rid,
            detail=f"save={save:.6f} progress={rec.progress:.6f}",
        )
        self.activities.append(
            SimulatedActivity(
                kind="checkpoint",
                name=f"ckpt:{uid}",
                resource=rid,
                start=now,
                end=now + save,
            )
        )
        region.free_at = now + save
        region.running = None
        region.last_used = now + save
        self._raise_bound(uid, now + save)
        self.stale_arcs += 1

    def _truncate_running(
        self, region: _RegionRec, uid: str, now: float, lose_work: bool
    ) -> float:
        """Cut the region's in-flight activity short at ``now``.

        Preemption keeps the executed slice as useful (checkpointed)
        work (``ok=True``); a region death marks it lost (``ok=False``).
        Returns the truncated activity's start."""
        start = now
        for i in range(len(self.activities) - 1, -1, -1):
            act = self.activities[i]
            if act.resource != region.id or act.end <= now + EPS:
                continue
            start = act.start
            if act.start >= now - EPS:
                del self.activities[i]
            else:
                self.activities[i] = SimulatedActivity(
                    kind=act.kind,
                    name=act.name,
                    resource=act.resource,
                    start=act.start,
                    end=now,
                    ok=not lose_work and act.ok,
                    attempt=act.attempt,
                )
            if act.kind == "task" and act.name == uid:
                break
        self.task_end.pop(uid, None)
        jid = self.tasks[uid].job_id
        jr = self.jobs[jid]
        jr.remaining.add(uid)  # its completion was just revoked
        if jr.completed_at is not None:
            jr.completed_at = None  # the last task is running again
        names = {uid, f"reconf:{uid}"}
        self.trace.events[:] = [
            e
            for e in self.trace.events
            if not (
                (
                    e.subject in names
                    and e.time > now - EPS
                    and e.kind in ("start", "end", "fault", "retry")
                )
                or (
                    e.kind == "job-complete"
                    and e.subject == jid
                    and e.time > now - EPS
                )
            )
        ]
        return start

    # -- dispatch ------------------------------------------------------------

    def _data_ready(self, uid: str) -> float | None:
        ready = self.tasks[uid].not_before
        for pred in self.workload.predecessors(uid):
            if pred not in self.task_end:
                return None
            finish = self.task_end[pred] + self.workload.comm_cost(pred, uid)
            ready = max(ready, finish)
        return ready

    def _candidates(self) -> list[tuple[float, int, str, tuple]]:
        cands: list[tuple[float, int, str, tuple]] = []
        for region in self._alive_regions():
            if not region.queue:
                continue
            uid = region.queue[0]
            rec = self.tasks[uid]
            assert rec.impl is not None
            if region.configured != rec.impl.name:
                ctrl = min(
                    range(self.arch.reconfigurators),
                    key=lambda c: (self.ctrl_free[c], c),
                )
                start = max(region.free_at, self.ctrl_free[ctrl])
                cands.append(
                    (start, 0, f"reconf:{uid}", ("reconf", region.id, ctrl))
                )
                continue
            ready = self._data_ready(uid)
            if ready is None:
                continue
            start = max(ready, region.free_at)
            cands.append((start, 1, uid, ("task", "region", region.id)))
        for p, queue in enumerate(self.proc_queue):
            if not queue:
                continue
            uid = queue[0]
            ready = self._data_ready(uid)
            if ready is None:
                continue
            start = max(ready, self.proc_free[p])
            cands.append((start, 2, uid, ("task", "proc", p)))
        for uid in sorted(self.pool):
            ready = self._data_ready(uid)
            if ready is None:
                continue
            p = min(
                range(self.arch.processors),
                key=lambda i: (self.proc_free[i], i),
            )
            start = max(ready, self.proc_free[p])
            cands.append((start, 3, uid, ("task", "pool", p)))
        return cands

    def _work_remains(self) -> bool:
        return bool(
            self.pool
            or any(r.queue for r in self._alive_regions())
            or any(self.proc_queue)
        )

    def _fire(self, cand: tuple[float, int, str, tuple]) -> None:
        start, _, name, payload = cand
        if payload[0] == "reconf":
            self._fire_reconf(start, payload[1], payload[2])
        else:
            self._fire_task(start, name, payload[1], payload[2])

    def _fire_reconf(self, start: float, rid: str, ctrl: int) -> None:
        region = self.regions[rid]
        uid = region.queue[0]
        rec = self.tasks[uid]
        assert rec.impl is not None
        name = f"reconf:{uid}"
        duration = self.arch.reconf_time(region.resources)
        resource = f"ICAP{ctrl}"
        cursor = start
        chain = 0
        while True:
            chain += 1
            rec.reconf_attempts += 1
            attempt = rec.reconf_attempts
            end = cursor + duration
            fails = (
                self.faults.reconf_fails(uid, attempt) if self.faults else False
            )
            self.activities.append(
                SimulatedActivity(
                    kind="reconfiguration",
                    name=name,
                    resource=resource,
                    start=cursor,
                    end=end,
                    ok=not fails,
                    attempt=attempt,
                )
            )
            self.ctrl_free[ctrl] = end
            if not fails:
                self._emit(cursor, "start", name, resource, attempt=attempt)
                self._emit(end, "end", name, resource)
                region.configured = rec.impl.name
                region.free_at = max(region.free_at, end)
                region.last_used = end
                return
            self._emit(
                end, "fault", name, resource,
                detail="bitstream load failed", attempt=attempt,
            )
            if chain > self.policy.max_retries:
                region.queue.pop(0)
                self._recover_task(
                    uid, end, "bitstream load retries exhausted"
                )
                return
            delay = self.policy.retry_delay(chain)
            self._emit(
                end, "retry", name, resource,
                detail=f"backoff {delay:g}", attempt=attempt + 1,
            )
            cursor = end + delay

    def _fire_task(self, start: float, uid: str, where: str, key) -> None:
        region: _RegionRec | None = None
        if where == "region":
            region = self.regions[key]
            assert region.queue[0] == uid
            region.queue.pop(0)
            resource = key
            proc = None
        elif where == "proc":
            assert self.proc_queue[key][0] == uid
            self.proc_queue[key].pop(0)
            resource = f"P{key}"
            proc = key
        else:  # pool: key is the chosen processor
            self.pool.remove(uid)
            resource = f"P{key}"
            proc = key
        rec = self.tasks[uid]
        assert rec.impl is not None
        duration = rec.restore_due + max(0.0, rec.impl.time - rec.progress)
        rec.run_restore = rec.restore_due
        if rec.restore_due > 0.0:
            rec.restore_charged.append(rec.restore_due)
        rec.restore_due = 0.0
        rec.dispatch_resource = resource
        if rec.resume_pending:
            self._emit(
                start,
                "resume",
                uid,
                resource,
                detail=(
                    f"restore={rec.run_restore:.6f} "
                    f"progress={rec.progress:.6f}"
                ),
            )
            rec.resume_pending = False

        cursor = start
        chain = 0
        final_end = start
        while True:
            chain += 1
            rec.attempts += 1
            attempt = rec.attempts
            end = cursor + duration
            fails = (
                self.faults.task_fails(uid, attempt) if self.faults else False
            )
            self.activities.append(
                SimulatedActivity(
                    kind="task",
                    name=uid,
                    resource=resource,
                    start=cursor,
                    end=end,
                    ok=not fails,
                    attempt=attempt,
                )
            )
            final_end = end
            if not fails:
                self._emit(cursor, "start", uid, resource, attempt=attempt)
                self._emit(end, "end", uid, resource)
                self.task_start[uid] = cursor
                self.task_end[uid] = end
                if region is not None:
                    region.running = (uid, cursor, end)
                self._on_complete(uid, end)
                break
            self._emit(
                end, "fault", uid, resource,
                detail="transient fault", attempt=attempt,
            )
            if chain > self.policy.max_retries:
                if region is not None:
                    region.running = None
                self._finish_occupancy(region, proc, final_end)
                self._recover_task(uid, end, "retries exhausted")
                return
            delay = self.policy.retry_delay(chain)
            self._emit(
                end, "retry", uid, resource,
                detail=f"backoff {delay:g}", attempt=attempt + 1,
            )
            cursor = end + delay
        self._finish_occupancy(region, proc, final_end)

    def _finish_occupancy(
        self, region: _RegionRec | None, proc: int | None, end: float
    ) -> None:
        if region is not None:
            region.free_at = end
            region.last_used = end
        elif proc is not None:
            self.proc_free[proc] = end

    def run(self) -> OnlineResult:
        while True:
            cands = self._candidates()
            nxt = (
                self.events[self.cursor]
                if self.cursor < len(self.events)
                else None
            )
            best = (
                min(cands, key=lambda c: (c[0], c[1], c[2]))
                if cands
                else None
            )
            if nxt is not None and (
                best is None or nxt[0] <= best[0] + EPS
            ):
                self.cursor += 1
                self._process_external(nxt)
                continue
            if best is None:
                if self._work_remains():
                    self._raise_deadlock()
                break
            self._fire(best)
        return self._result()

    def _process_external(self, event: tuple[float, int, str]) -> None:
        t, cls, key = event
        if cls == 0:
            self._process_arrival(key)
        elif cls == 1:
            self._process_region_death(key, t)
        elif cls == 2:
            self._process_departure(key, t)
        else:
            self._process_deadline(key, t)

    # -- task execution ------------------------------------------------------

    def _recover_task(self, uid: str, now: float, cause: str) -> None:
        """The ladder after exhausted retries: SW fallback, then online
        re-placement, then failure."""
        task = self.workload.task(uid)
        rec = self.tasks[uid]
        rec.not_before = max(rec.not_before, now)
        if self.policy.sw_fallback and task.has_sw:
            self._to_fallback(uid, now, cause)
        elif self.policy.repair and task.has_hw:
            self._replace_hw_batch([uid], now, cause)
        else:
            self._fail_task(uid, now, f"{cause}; no recovery path")

    def _on_complete(self, uid: str, end: float) -> None:
        rec = self.tasks[uid]
        jr = self.jobs[rec.job_id]
        jr.remaining.discard(uid)
        for succ in self.workload.successors(uid):
            self._raise_bound(succ, end)
        if not jr.remaining and not jr.departed:
            jr.completed_at = end
            self._emit(end, "job-complete", rec.job_id)

    def _raise_deadlock(self) -> None:
        blocked: dict[str, str] = {}
        stuck: list[str] = []
        pending: list[str] = []
        for region in self._alive_regions():
            if region.queue:
                blocked[region.id] = self._block_reason(region.queue[0])
                stuck.extend(region.queue)
                pending.append(f"{region.id} queue: {region.queue[:6]}")
        for p, queue in enumerate(self.proc_queue):
            if queue:
                blocked[f"P{p}"] = self._block_reason(queue[0])
                stuck.extend(queue)
                pending.append(f"P{p} queue: {queue[:6]}")
        for uid in self.pool:
            blocked[f"pool:{uid}"] = self._block_reason(uid)
            stuck.append(uid)
        if self.pool:
            pending.append(f"fallback pool: {sorted(self.pool)[:6]}")
        for t, cls, key in self.events[self.cursor :]:
            kind = ("arrival", "region-death", "departure", "deadline")[cls]
            pending.append(f"t={t:g} {kind} {key}")
        deps = {
            uid: dep
            for uid in stuck
            if (dep := self._earliest_missing_pred(uid))
        }
        raise DeadlockError(
            blocked, sorted(set(stuck)), pending_events=pending,
            blocking_dependency=deps,
        )

    def _earliest_missing_pred(self, uid: str) -> str | None:
        missing = [
            p
            for p in self.workload.predecessors(uid)
            if p not in self.task_end and p not in self.resolved
        ]
        if not missing:
            return None
        return min(
            missing, key=lambda p: (self.plan_end.get(p, float("inf")), p)
        )

    def _block_reason(self, uid: str) -> str:
        missing = [
            p
            for p in self.workload.predecessors(uid)
            if p not in self.task_end and p not in self.resolved
        ]
        if missing:
            return (
                f"task {uid!r} waits on unfinished predecessor(s) "
                f"{missing[:4]}"
            )
        return f"task {uid!r} is runnable but was never dispatched"

    def _result(self) -> OnlineResult:
        makespan = max((a.end for a in self.activities), default=0.0)
        jobs = {
            jid: JobOutcome(
                job_id=jid,
                tenant=jr.job.tenant,
                arrival=jr.job.arrival,
                deadline=jr.job.deadline,
                priority=jr.job.priority,
                completed_at=jr.completed_at,
                missed=jr.missed,
                departed=jr.departed,
                preemptions=jr.preemptions,
                predicted_completion=jr.predicted_completion,
                uids=list(jr.uids),
            )
            for jid, jr in sorted(self.jobs.items())
        }
        tasks = {}
        for uid in sorted(self.tasks):
            rec = self.tasks[uid]
            impl = rec.impl
            tasks[uid] = TaskOutcome(
                uid=uid,
                job_id=rec.job_id,
                impl_name=impl.name if impl is not None else "",
                impl_time=impl.time if impl is not None else 0.0,
                impl_kind=(
                    "hw" if impl is not None and impl.is_hw else "sw"
                ),
                resource=rec.dispatch_resource,
                attempts=rec.attempts,
                preemptions=rec.preemptions,
                restore_charged=list(rec.restore_charged),
                completed_at=self.task_end.get(uid),
                fallback=rec.fallback,
                cancelled=uid in self.cancelled,
                skipped=uid in self.skipped,
                failed=uid in self.failed,
            )
        regions = [
            RegionLog(
                region_id=r.id,
                resources=r.resources,
                alloc_time=r.alloc_time,
                freed_time=r.freed_at,
                cause=r.freed_cause,
            )
            for r in sorted(self.regions.values(), key=lambda r: r.id)
        ]
        return OnlineResult(
            trace_name=self.src.name,
            activities=self.activities,
            trace=self.trace,
            jobs=jobs,
            tasks=tasks,
            regions=regions,
            makespan=makespan,
            replans=list(self.replans),
        )


def run_online(
    trace: ArrivalTrace,
    faults: FaultPlan | None = None,
    policy: RecoveryPolicy | None = None,
    checkpoint: CheckpointModel | None = None,
    preemption: bool = True,
    full_replan_threshold: int = 12,
    on_event=None,
) -> OnlineResult:
    """Run an arrival trace through the online runtime (see
    :class:`OnlineRuntime`)."""
    return OnlineRuntime(
        trace,
        faults=faults,
        policy=policy,
        checkpoint=checkpoint,
        preemption=preemption,
        full_replan_threshold=full_replan_threshold,
        on_event=on_event,
    ).run()
