"""Recovery policies and the online repair scheduler.

Three escalation levels, cheapest first (the order a real runtime would
try them):

1. **bounded retry with exponential backoff** — transient task faults
   and failed bitstream loads are simply re-attempted
   (:class:`RecoveryPolicy.max_retries`, :meth:`RecoveryPolicy.retry_delay`);
2. **software fallback** — when a region dies (or retries are
   exhausted) a task that also has a SW implementation is re-dispatched
   to a processor core;
3. **repair scheduling** — when fallback cannot cover the loss (some
   affected task is HW-only), :func:`repair_schedule` re-invokes the PA
   scheduler on the *residual* task graph (everything not yet finished)
   over the *surviving* architecture (fabric minus the dead regions)
   and the executor resumes from the repaired plan.

The repair path reuses the paper's own scheduler as the online
re-planner, which is exactly the role Section V's ``doSchedule`` would
play in a self-healing runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Mapping

from ..core import PAOptions
from ..model import (
    Architecture,
    Instance,
    Region,
    RegionPlacement,
    ResourceVector,
    Schedule,
    TaskGraph,
)

__all__ = [
    "RecoveryPolicy",
    "RecoveryError",
    "RepairResult",
    "degraded_architecture",
    "residual_instance",
    "repair_schedule",
]


class RecoveryError(RuntimeError):
    """Raised when the repair scheduler cannot produce a viable plan."""


@dataclass(frozen=True)
class RecoveryPolicy:
    """Knobs of the runtime recovery ladder.

    ``repair_latency`` charges the online re-scheduling overhead in
    simulation time: the repaired plan cannot dispatch before
    ``death_time + repair_latency``.  ``max_backoff`` caps the
    exponential retry delay (``None`` = uncapped) so long retry chains
    in long-running online workloads cannot grow the idle time without
    bound.
    """

    max_retries: int = 3
    backoff: float = 1.0
    backoff_factor: float = 2.0
    max_backoff: float | None = None
    sw_fallback: bool = True
    repair: bool = True
    repair_latency: float = 0.0
    max_repairs: int = 3

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries} "
                "(a negative retry count is meaningless)"
            )
        if self.backoff < 0:
            raise ValueError(
                f"backoff must be >= 0, got {self.backoff} "
                "(a retry cannot be scheduled into the past)"
            )
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor} "
                "(delays must not shrink between attempts)"
            )
        if self.max_backoff is not None and self.max_backoff < 0:
            raise ValueError(
                f"max_backoff must be >= 0 (or None for uncapped), "
                f"got {self.max_backoff}"
            )
        if self.repair_latency < 0:
            raise ValueError(
                f"repair_latency must be >= 0, got {self.repair_latency}"
            )
        if self.max_repairs < 0:
            raise ValueError(
                f"max_repairs must be >= 0, got {self.max_repairs}"
            )

    def retry_delay(self, failures: int) -> float:
        """Idle time before re-attempting after the ``failures``-th
        failure: exponential backoff, capped at ``max_backoff``."""
        if failures < 1:
            raise ValueError("failures must be >= 1")
        delay = self.backoff * self.backoff_factor ** (failures - 1)
        if self.max_backoff is not None:
            delay = min(delay, self.max_backoff)
        return delay


def degraded_architecture(
    arch: Architecture, dead_regions: Iterable[Region]
) -> Architecture:
    """The surviving architecture: fabric minus the dead regions' area.

    Raises :class:`RecoveryError` when no fabric is left at all (the
    architecture model requires a non-empty fabric; with zero fabric a
    repair plan could only contain SW tasks anyway, which the fallback
    path already covers).
    """
    lost = ResourceVector.zero()
    for region in dead_regions:
        lost = lost + region.resources
    remaining = {
        rtype: max(0, arch.max_res[rtype] - lost[rtype])
        for rtype in arch.max_res
    }
    if not any(remaining.values()):
        raise RecoveryError("no fabric resources survive the dead regions")
    return arch.with_max_res(ResourceVector(remaining))


def residual_instance(
    instance: Instance,
    completed: Iterable[str],
    dead_regions: Iterable[Region],
) -> Instance:
    """The re-scheduling problem after a permanent fault.

    Task graph restricted to unfinished tasks (edges among them; edges
    from completed predecessors are satisfied and drop out) on the
    degraded architecture.
    """
    done = set(completed)
    graph = instance.taskgraph
    keep = [tid for tid in graph.task_ids if tid not in done]
    if not keep:
        raise RecoveryError("nothing left to repair — all tasks completed")
    residual = TaskGraph(name=f"{graph.name}~residual")
    for tid in keep:
        residual.add_task(graph.task(tid))
    kept = set(keep)
    for src, dst in graph.edges():
        if src in kept and dst in kept:
            residual.add_dependency(src, dst, comm=graph.comm_cost(src, dst))
    arch = degraded_architecture(instance.architecture, dead_regions)
    return Instance(
        architecture=arch,
        taskgraph=residual,
        name=f"{instance.name}~residual",
        metadata={**instance.metadata, "residual_of": instance.name},
    )


@dataclass
class RepairResult:
    """A repaired plan plus the degraded problem it solves.

    ``schedule`` covers exactly the residual tasks, placed on fresh
    regions (renamed with ``suffix`` so they can never collide with the
    dead ones) and the surviving processor cores;
    ``residual_instance`` is what
    :func:`repro.validate.check_repaired_schedule` validates it against.
    """

    schedule: Schedule
    residual_instance: Instance
    dead_regions: dict[str, Region]
    completed: frozenset[str]

    @property
    def dead_region_ids(self) -> frozenset[str]:
        return frozenset(self.dead_regions)


def _rename_regions(schedule: Schedule, suffix: str) -> Schedule:
    """Rename every region so repaired plans never reuse a dead id."""
    mapping = {rid: f"{rid}{suffix}" for rid in schedule.regions}
    tasks = {}
    for tid, task in schedule.tasks.items():
        if isinstance(task.placement, RegionPlacement):
            task = replace(
                task,
                placement=RegionPlacement(mapping[task.placement.region_id]),
            )
        tasks[tid] = task
    return Schedule(
        tasks=tasks,
        regions={
            mapping[rid]: replace(region, id=mapping[rid])
            for rid, region in schedule.regions.items()
        },
        reconfigurations=[
            replace(rc, region_id=mapping[rc.region_id])
            for rc in schedule.reconfigurations
        ],
        scheduler=schedule.scheduler,
        metadata={**schedule.metadata, "repair": True},
    )


def repair_schedule(
    instance: Instance,
    completed: Iterable[str],
    dead_regions: Iterable[Region],
    options: PAOptions | None = None,
    suffix: str = "'",
) -> RepairResult:
    """Re-invoke PA on the residual task graph over the surviving fabric.

    Returns the repaired plan with its degraded instance so callers can
    validate one against the other.  Raises :class:`RecoveryError` when
    re-scheduling is impossible (no fabric left for a HW-only task, or
    the residual problem is empty).
    """
    from ..engine import ScheduleRequest, get_backend, pa_options_dict

    completed = frozenset(completed)
    dead = {region.id: region for region in dead_regions}
    residual = residual_instance(instance, completed, dead.values())
    try:
        # The repair pass is pure Section V-B scheduling (no shrink loop,
        # no floorplanning) — the surviving placements are kept as-is.
        outcome = get_backend("pa").run(
            ScheduleRequest(
                residual,
                "pa",
                options={"floorplan": False, **pa_options_dict(options)},
            )
        )
        schedule = outcome.schedule
    except Exception as exc:  # PA failure = unrepairable loss
        raise RecoveryError(f"repair scheduling failed: {exc}") from exc
    return RepairResult(
        schedule=_rename_regions(schedule, suffix),
        residual_instance=residual,
        dead_regions=dead,
        completed=frozenset(completed),
    )
