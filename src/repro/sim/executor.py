"""Discrete-event execution of a schedule.

The schedulers produce *static plans*; a real system dispatches them at
runtime, where task durations differ from the profile numbers.  The
executor replays a schedule as a **dispatch plan** — the orders it
encodes (task sequence per region, per core, and the reconfiguration
order on the controller) are kept, but every start time is re-derived
from actual completion events:

* a task starts when its predecessors have finished (plus communication
  cost when that extension is active), its resource is free, and — for
  hardware tasks — its bitstream has been loaded;
* a reconfiguration starts when its region is idle (ingoing task done)
  and the controller reaches it in the planned controller order.

With a unit jitter model the simulation must reproduce the planned
times *exactly* — the property test that cross-validates the
scheduler's timing engine against an independent executor.  With
non-unit jitter it answers the robustness question: how much does the
plan's makespan degrade when tasks overrun?

On top of the replay sits a fault-injection runtime (``faults=`` and
``recovery=``): transient task faults and failed bitstream loads are
retried with exponential backoff, a dead region's tasks are
re-dispatched to their software implementations, and when fallback
cannot cover the loss the online repair scheduler
(:func:`repro.sim.recovery.repair_schedule`) re-plans the residual task
graph on the surviving fabric and the executor resumes from the
repaired plan.  Every runtime decision is recorded as a structured
:class:`~repro.sim.events.ExecutionEvent` in the result's trace.
With ``faults=None`` the fault machinery is inert and the executed
times are identical to the plain replay.

Dispatch is strictly time-ordered: among all runnable activities the
one with the earliest derived start fires first (deterministic
tie-break), which is what makes fault times well-defined.  When nothing
is runnable but work remains, the executor raises a
:class:`DeadlockError` diagnosing each stuck resource instead of
looping or returning a partial result.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, Mapping

from ..model import (
    Instance,
    ProcessorPlacement,
    Reconfiguration,
    Region,
    RegionPlacement,
    Schedule,
)
from .events import ExecutionEvent, ExecutionTrace
from .faults import FaultPlan
from .recovery import RecoveryError, RecoveryPolicy, RepairResult, repair_schedule

__all__ = [
    "SimulatedActivity",
    "SimulationResult",
    "DeadlockError",
    "simulate",
    "jitter_model",
]

EPS = 1e-9


class DeadlockError(RuntimeError):
    """The dispatch plan cannot make progress.

    ``blocked`` maps each stuck resource to a human-readable reason;
    ``stuck_tasks`` lists the unfinished task ids; ``pending_events``
    is a snapshot of the not-yet-processed event queue (queue heads,
    scheduled fault events, online arrivals) and ``blocking_dependency``
    maps each stuck task to its earliest unsatisfied dependency — so an
    online-mode deadlock is debuggable from the message alone.
    """

    def __init__(
        self,
        blocked: Mapping[str, str],
        stuck_tasks: list[str],
        pending_events: list[str] | None = None,
        blocking_dependency: Mapping[str, str] | None = None,
    ):
        self.blocked = dict(blocked)
        self.stuck_tasks = list(stuck_tasks)
        self.pending_events = list(pending_events or [])
        self.blocking_dependency = dict(blocking_dependency or {})
        lines = [f"  {res}: {why}" for res, why in sorted(self.blocked.items())]
        if self.blocking_dependency:
            lines.append("earliest unsatisfied dependency per stuck task:")
            lines.extend(
                f"  {task} <- {dep}"
                for task, dep in sorted(self.blocking_dependency.items())
            )
        if self.pending_events:
            lines.append(
                f"pending event queue ({len(self.pending_events)} entries):"
            )
            lines.extend(f"  {entry}" for entry in self.pending_events[:20])
            if len(self.pending_events) > 20:
                lines.append(
                    f"  ... and {len(self.pending_events) - 20} more"
                )
        super().__init__(
            "dispatch deadlock — no runnable activity but "
            f"{len(self.stuck_tasks)} task(s) unfinished "
            f"({', '.join(repr(t) for t in self.stuck_tasks[:5])}"
            f"{', ...' if len(self.stuck_tasks) > 5 else ''}):\n"
            + "\n".join(lines)
        )


@dataclass(frozen=True)
class SimulatedActivity:
    """One executed activity: a task or a reconfiguration.

    ``ok`` is False for failed attempts (the resource was occupied but
    the work was lost to an injected fault)."""

    kind: str  # "task" | "reconfiguration"
    name: str  # task id, or "reconf:<outgoing task>"
    resource: str  # "RRx", "Px" or "ICAP"
    start: float
    end: float
    ok: bool = True
    attempt: int = 1

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class SimulationResult:
    """Outcome of one simulated execution."""

    activities: list[SimulatedActivity]
    task_start: dict[str, float]
    task_end: dict[str, float]
    makespan: float
    planned_makespan: float
    trace: ExecutionTrace = field(default_factory=ExecutionTrace)
    completed: bool = True
    failed_tasks: list[str] = field(default_factory=list)
    repairs: list[RepairResult] = field(default_factory=list)

    @property
    def slippage(self) -> float:
        """Relative makespan growth over the plan (0 = on time)."""
        if self.planned_makespan <= 0:
            return 0.0
        return (self.makespan - self.planned_makespan) / self.planned_makespan

    def timeline(self) -> list[SimulatedActivity]:
        return sorted(self.activities, key=lambda a: (a.start, a.name))


def jitter_model(
    factor: float = 0.2, seed: int = 0
) -> Callable[[str, float], float]:
    """Multiplicative uniform jitter: duration x U[1-factor, 1+factor].

    Deterministic per (seed, task) so repeated simulations agree.
    """
    if not (0.0 <= factor < 1.0):
        raise ValueError("jitter factor must be in [0, 1)")

    def model(name: str, duration: float) -> float:
        rng = random.Random(f"{seed}:{name}")
        return duration * rng.uniform(1.0 - factor, 1.0 + factor)

    return model


def simulate(
    instance: Instance,
    schedule: Schedule,
    jitter: Callable[[str, float], float] | Mapping[str, float] | None = None,
    communication_overhead: bool = False,
    faults: FaultPlan | None = None,
    recovery: RecoveryPolicy | None = None,
    on_event: Callable[[ExecutionEvent], None] | None = None,
) -> SimulationResult:
    """Execute ``schedule`` as a dispatch plan (see module docstring).

    ``faults`` injects runtime failures; ``recovery`` configures the
    retry/fallback/repair ladder (defaults to :class:`RecoveryPolicy`);
    ``on_event`` observes every :class:`ExecutionEvent` as it fires.
    """
    if faults is not None and not faults:
        faults = None  # empty plan == no faults
    if faults is not None:
        known = set(schedule.regions)
        for _, rid in faults.region_deaths():
            if rid not in known:
                raise ValueError(
                    f"region-death targets unknown region {rid!r} "
                    f"(schedule has {sorted(known)})"
                )
    engine = _Engine(
        instance=instance,
        schedule=schedule,
        jitter=jitter,
        communication_overhead=communication_overhead,
        faults=faults,
        policy=recovery or RecoveryPolicy(),
        on_event=on_event,
    )
    return engine.run()


class _Engine:
    """Time-ordered dispatch of a plan with optional fault injection.

    One instance executes one simulation; all mutable runtime state
    (queues, resource-free times, the fallback pool, fault bookkeeping)
    lives here so the repair scheduler can splice a new plan into a
    running execution.
    """

    def __init__(
        self,
        instance: Instance,
        schedule: Schedule,
        jitter,
        communication_overhead: bool,
        faults: FaultPlan | None,
        policy: RecoveryPolicy,
        on_event,
    ) -> None:
        self.instance = instance
        self.schedule = schedule
        self.graph = instance.taskgraph
        self.jitter = jitter
        self.comm = communication_overhead
        self.faults = faults
        self.policy = policy
        self.on_event = on_event
        self.trace = ExecutionTrace()

        arch = instance.architecture
        self.task_start: dict[str, float] = {}
        self.task_end: dict[str, float] = {}
        self.reconf_end: dict[str, float] = {}  # keyed by outgoing task
        self.resolved: dict[str, float] = {}  # when a failed task gave up
        self.activities: list[SimulatedActivity] = []
        self.region_free: dict[str, float] = {rid: 0.0 for rid in schedule.regions}
        self.proc_free: dict[int, float] = {
            p: 0.0 for p in range(arch.processors)
        }
        self.controller_free: dict[int, float] = {
            c: 0.0 for c in range(arch.reconfigurators)
        }
        self.regions_catalog: dict[str, Region] = dict(schedule.regions)
        self.pool: list[str] = []  # SW-fallback tasks, dispatched when ready
        self.not_before: dict[str, float] = {}  # earliest fallback dispatch
        self.fallback_impl: dict[str, object] = {}
        self.failed: set[str] = set()  # unrecovered faults
        self.skipped: set[str] = set()  # abandoned (failed ancestor)
        self.dead_regions: dict[str, Region] = {}
        self.deaths: list[tuple[float, str]] = (
            faults.region_deaths() if faults else []
        )
        self.repairs: list[RepairResult] = []
        self._reconf_region: dict[str, str] = {}  # activity name -> region
        self._install_plan(schedule)

    # -- plan installation (initial plan and repaired plans) ----------------

    def _install_plan(self, schedule: Schedule) -> None:
        self.region_tasks = {
            rid: [t.task_id for t in schedule.region_sequence(rid)]
            for rid in schedule.regions
        }
        proc_ids = sorted(
            {
                t.placement.index
                for t in schedule.tasks.values()
                if isinstance(t.placement, ProcessorPlacement)
            }
        )
        self.proc_tasks = {
            p: [t.task_id for t in schedule.processor_sequence(p)]
            for p in proc_ids
        }
        controller_order = sorted(
            schedule.reconfigurations, key=lambda r: (r.start, r.region_id)
        )
        self.controller_queues: dict[int, list[Reconfiguration]] = {}
        for rc in controller_order:
            self.controller_queues.setdefault(rc.controller, []).append(rc)
        self.reconf_for: dict[str, Reconfiguration] = {
            rc.outgoing_task: rc for rc in controller_order
        }
        self.planned_duration = {
            tid: t.duration for tid, t in schedule.tasks.items()
        }

    # -- small helpers -------------------------------------------------------

    def _emit(
        self,
        time: float,
        kind: str,
        subject: str,
        resource: str = "",
        detail: str = "",
        attempt: int = 0,
    ) -> None:
        event = ExecutionEvent(
            time=time,
            kind=kind,
            subject=subject,
            resource=resource,
            detail=detail,
            attempt=attempt,
        )
        self.trace.add(event)
        if self.on_event is not None:
            self.on_event(event)

    def _actual(self, name: str, duration: float) -> float:
        if self.jitter is None:
            return duration
        if callable(self.jitter):
            return max(EPS, self.jitter(name, duration))
        return max(EPS, duration * self.jitter.get(name, 1.0))

    def _data_ready(self, task_id: str) -> tuple[float, bool] | None:
        """Earliest data-ready time, or None while a predecessor is
        still outstanding.  The flag is True when an ancestor failed
        (the task can only be skipped)."""
        ready = 0.0
        doomed = False
        for pred in self.graph.predecessors(task_id):
            if pred in self.task_end:
                finish = self.task_end[pred]
                if self.comm:
                    finish += self.graph.comm_cost(pred, task_id)
            elif pred in self.resolved:
                finish = self.resolved[pred]
                doomed = True
            else:
                return None
            ready = max(ready, finish)
        return ready, doomed

    def _ingoing_end(self, rc: Reconfiguration) -> float | None:
        if rc.ingoing_task in self.task_end:
            return self.task_end[rc.ingoing_task]
        if rc.ingoing_task in self.resolved:
            return self.resolved[rc.ingoing_task]
        return None

    def _drop_reconf(self, task_id: str) -> None:
        """Remove the pending bitstream load for a task that will never
        run in hardware (fallback / skip / failure / dead region)."""
        rc = self.reconf_for.pop(task_id, None)
        if rc is None:
            return
        queue = self.controller_queues.get(rc.controller, [])
        if rc in queue:
            queue.remove(rc)

    # -- candidate collection -----------------------------------------------

    def _candidates(self) -> list[tuple[float, int, str, tuple]]:
        """Every runnable head with its derived start time.

        A candidate is ``(start, class, name, payload)``; the tuple
        orders firing deterministically by time then class then name.
        """
        cands: list[tuple[float, int, str, tuple]] = []
        for controller in sorted(self.controller_queues):
            queue = self.controller_queues[controller]
            if not queue:
                continue
            rc = queue[0]
            ingoing_end = self._ingoing_end(rc)
            if ingoing_end is None:
                continue
            start = max(ingoing_end, self.controller_free[rc.controller])
            cands.append(
                (start, 0, f"reconf:{rc.outgoing_task}", ("reconf", controller))
            )
        for rid in sorted(self.region_tasks):
            queue = self.region_tasks[rid]
            if not queue:
                continue
            task_id = queue[0]
            ready = self._data_ready(task_id)
            if ready is None:
                continue
            ready_at, doomed = ready
            if doomed:
                cands.append((ready_at, 1, task_id, ("skip", "region", rid)))
                continue
            if task_id in self.reconf_for and task_id not in self.reconf_end:
                continue  # bitstream not loaded yet
            start = max(ready_at, self.region_free[rid])
            if task_id in self.reconf_end:
                start = max(start, self.reconf_end[task_id])
            cands.append((start, 1, task_id, ("region", rid)))
        for proc in sorted(self.proc_tasks):
            queue = self.proc_tasks[proc]
            if not queue:
                continue
            task_id = queue[0]
            ready = self._data_ready(task_id)
            if ready is None:
                continue
            ready_at, doomed = ready
            if doomed:
                cands.append((ready_at, 2, task_id, ("skip", "proc", proc)))
                continue
            start = max(ready_at, self.proc_free[proc])
            cands.append((start, 2, task_id, ("proc", proc)))
        for task_id in sorted(self.pool):
            ready = self._data_ready(task_id)
            if ready is None:
                continue
            ready_at, doomed = ready
            if doomed:
                cands.append((ready_at, 3, task_id, ("skip", "pool", None)))
                continue
            proc = min(self.proc_free, key=lambda p: (self.proc_free[p], p))
            # A fallback cannot start before the fault that caused it.
            start = max(
                ready_at, self.not_before.get(task_id, 0.0), self.proc_free[proc]
            )
            cands.append((start, 3, task_id, ("pool", proc)))
        return cands

    def _work_remains(self) -> bool:
        return bool(
            self.pool
            or any(self.region_tasks.values())
            or any(self.proc_tasks.values())
            or any(self.controller_queues.values())
        )

    # -- main loop -----------------------------------------------------------

    def run(self) -> SimulationResult:
        while self._work_remains():
            cands = self._candidates()
            next_death = self.deaths[0] if self.deaths else None
            if not cands:
                if next_death is not None:
                    self._process_death()
                    continue
                self._raise_deadlock()
            best = min(cands, key=lambda c: (c[0], c[1], c[2]))
            if next_death is not None and next_death[0] <= best[0]:
                self._process_death()
                continue
            self._fire(best)
        return self._result()

    def _result(self) -> SimulationResult:
        makespan = max((a.end for a in self.activities), default=0.0)
        failed = sorted(self.failed | self.skipped)
        completed = set(self.task_end) >= set(self.schedule.tasks)
        return SimulationResult(
            activities=self.activities,
            task_start=self.task_start,
            task_end=self.task_end,
            makespan=makespan,
            planned_makespan=self.schedule.makespan,
            trace=self.trace,
            completed=completed,
            failed_tasks=failed,
            repairs=self.repairs,
        )

    # -- firing --------------------------------------------------------------

    def _fire(self, cand: tuple[float, int, str, tuple]) -> None:
        start, _, name, payload = cand
        if payload[0] == "skip":
            self._fire_skip(start, name, payload)
        elif payload[0] == "reconf":
            self._fire_reconf(start, payload[1])
        else:
            self._fire_task(start, name, payload)

    def _fire_skip(self, time: float, task_id: str, payload: tuple) -> None:
        _, where, key = payload
        if where == "region":
            self.region_tasks[key].pop(0)
        elif where == "proc":
            self.proc_tasks[key].pop(0)
        else:
            self.pool.remove(task_id)
        self._drop_reconf(task_id)
        self.resolved[task_id] = time
        self.skipped.add(task_id)
        self._emit(time, "skip", task_id, detail="ancestor failed")

    def _fire_reconf(self, start: float, controller: int) -> None:
        queue = self.controller_queues[controller]
        rc = queue.pop(0)
        name = f"reconf:{rc.outgoing_task}"
        self._reconf_region[name] = rc.region_id
        cursor = start
        attempt = 1
        while True:
            key = name if attempt == 1 else f"{name}#a{attempt}"
            duration = self._actual(key, rc.duration)
            end = cursor + duration
            fails = (
                self.faults.reconf_fails(rc.outgoing_task, attempt)
                if self.faults
                else False
            )
            self.activities.append(
                SimulatedActivity(
                    kind="reconfiguration",
                    name=name,
                    resource=f"ICAP{controller}",
                    start=cursor,
                    end=end,
                    ok=not fails,
                    attempt=attempt,
                )
            )
            self.controller_free[controller] = end
            if not fails:
                self._emit(
                    cursor, "start", name, f"ICAP{controller}", attempt=attempt
                )
                self._emit(end, "end", name, f"ICAP{controller}")
                self.reconf_end[rc.outgoing_task] = end
                return
            self._emit(
                end,
                "fault",
                name,
                f"ICAP{controller}",
                detail="bitstream load failed",
                attempt=attempt,
            )
            if attempt > self.policy.max_retries:
                self.reconf_for.pop(rc.outgoing_task, None)
                self._recover_hw_task(
                    rc.outgoing_task, end, cause="bitstream load retries exhausted"
                )
                return
            delay = self.policy.retry_delay(attempt)
            self._emit(
                end, "retry", name, f"ICAP{controller}",
                detail=f"backoff {delay:g}", attempt=attempt + 1,
            )
            cursor = end + delay
            attempt += 1

    def _fire_task(self, start: float, task_id: str, payload: tuple) -> None:
        where, key = payload
        # Dequeue before running the attempt chain: recovery paths
        # (exhausted retries) may themselves edit the queues.
        if where == "region":
            resource = key
            self.region_tasks[key].pop(0)
            duration0 = self.planned_duration[task_id]
        elif where == "proc":
            resource = f"P{key}"
            self.proc_tasks[key].pop(0)
            duration0 = self.planned_duration[task_id]
        else:  # fallback pool
            resource = f"P{key}"
            self.pool.remove(task_id)
            duration0 = self.fallback_impl[task_id].time

        # If the region dies mid-attempt, the death processing (which is
        # guaranteed to run before any later activity fires) truncates
        # the committed activities and triggers recovery for this task.
        cursor = start
        attempt = 1
        final_end = start
        while True:
            jitter_key = task_id if attempt == 1 else f"{task_id}#a{attempt}"
            duration = self._actual(jitter_key, duration0)
            end = cursor + duration
            fails = (
                self.faults.task_fails(task_id, attempt) if self.faults else False
            )
            self.activities.append(
                SimulatedActivity(
                    kind="task",
                    name=task_id,
                    resource=resource,
                    start=cursor,
                    end=end,
                    ok=not fails,
                    attempt=attempt,
                )
            )
            final_end = end
            if not fails:
                self._emit(cursor, "start", task_id, resource, attempt=attempt)
                self._emit(end, "end", task_id, resource)
                self.task_start[task_id] = cursor
                self.task_end[task_id] = end
                break
            self._emit(
                end, "fault", task_id, resource,
                detail="transient fault", attempt=attempt,
            )
            if attempt > self.policy.max_retries:
                self._exhausted_task(task_id, end, where, resource)
                break
            delay = self.policy.retry_delay(attempt)
            self._emit(
                end, "retry", task_id, resource,
                detail=f"backoff {delay:g}", attempt=attempt + 1,
            )
            cursor = end + delay
            attempt += 1

        if where == "region":
            self.region_free[key] = final_end
        else:
            self.proc_free[key] = final_end

    def _exhausted_task(
        self, task_id: str, time: float, where: str, resource: str
    ) -> None:
        """Retries are spent; fall back to SW if the task ran in HW."""
        if where == "region":
            self._recover_hw_task(task_id, time, cause="retries exhausted")
            return
        self.resolved[task_id] = time
        self.failed.add(task_id)
        self._emit(time, "failed", task_id, resource, detail="retries exhausted")

    def _recover_hw_task(self, task_id: str, time: float, cause: str) -> None:
        """Move a HW task to the SW fallback pool, or give up on it.

        The task is removed from its region queue (it may not be the
        head when a bitstream load fails ahead of time)."""
        for queue in self.region_tasks.values():
            if task_id in queue:
                queue.remove(task_id)
        self._drop_reconf(task_id)
        task = self.graph.task(task_id)
        if self.policy.sw_fallback and task.has_sw:
            self.fallback_impl[task_id] = task.fastest_sw()
            self.pool.append(task_id)
            self.not_before[task_id] = time
            self._emit(time, "fallback", task_id, detail=cause)
        else:
            self.resolved[task_id] = time
            self.failed.add(task_id)
            self._emit(time, "failed", task_id, detail=f"{cause}; no SW fallback")

    # -- permanent region death ---------------------------------------------

    def _process_death(self) -> None:
        death_time, region_id = self.deaths.pop(0)
        region = self.regions_catalog[region_id]
        self.dead_regions[region_id] = region
        self._emit(death_time, "region-death", region_id, resource=region_id)

        victims: set[str] = set()
        # 1. abort whatever the region (or the ICAP, loading into it)
        #    was doing past the death instant.
        victims |= self._truncate_region_activities(region_id, death_time)
        # 2. everything still queued on the region can never run there.
        victims |= set(self.region_tasks.pop(region_id, []))
        self.region_free.pop(region_id, None)
        # 3. pending bitstream loads into the region are void.
        for queue in self.controller_queues.values():
            for rc in list(queue):
                if rc.region_id == region_id:
                    queue.remove(rc)
                    self.reconf_for.pop(rc.outgoing_task, None)

        for task_id in victims:
            self._emit(
                death_time, "fault", task_id, region_id,
                detail=f"region {region_id} died",
            )

        if not victims:
            return
        fallback_ok = self.policy.sw_fallback and all(
            self.graph.task(t).has_sw for t in victims
        )
        if fallback_ok:
            for task_id in sorted(victims):
                task = self.graph.task(task_id)
                self.fallback_impl[task_id] = task.fastest_sw()
                self.pool.append(task_id)
                self.not_before[task_id] = death_time
                self._emit(
                    death_time, "fallback", task_id,
                    detail=f"region {region_id} died",
                )
            return
        if self.policy.repair and len(self.repairs) < self.policy.max_repairs:
            if self._repair(death_time, region_id):
                return
        for task_id in sorted(victims):
            task = self.graph.task(task_id)
            if self.policy.sw_fallback and task.has_sw:
                self.fallback_impl[task_id] = task.fastest_sw()
                self.pool.append(task_id)
                self.not_before[task_id] = death_time
                self._emit(
                    death_time, "fallback", task_id,
                    detail=f"region {region_id} died",
                )
            else:
                self.resolved[task_id] = death_time
                self.failed.add(task_id)
                self._emit(
                    death_time, "failed", task_id,
                    detail=f"region {region_id} died; no recovery path",
                )

    def _truncate_region_activities(
        self, region_id: str, death_time: float
    ) -> set[str]:
        """Cut short activities overlapping the death instant.

        Returns tasks whose completed or in-flight work is lost: a task
        executing (or retrying) on the region, and a task whose
        bitstream load finished after the region died."""
        victims: set[str] = set()
        scrubbed: set[str] = set()  # activity names with events past T
        updated: list[SimulatedActivity] = []
        for activity in self.activities:
            on_region = (
                activity.resource == region_id
                if activity.kind == "task"
                else self._reconf_region.get(activity.name) == region_id
            )
            if not on_region or activity.end <= death_time:
                updated.append(activity)
                continue
            scrubbed.add(activity.name)
            task_id = (
                activity.name
                if activity.kind == "task"
                else activity.name.removeprefix("reconf:")
            )
            if activity.kind == "task":
                if activity.ok:
                    self.task_start.pop(task_id, None)
                    self.task_end.pop(task_id, None)
                victims.add(task_id)
            else:
                self.reconf_end.pop(task_id, None)
                if task_id not in self.task_end:
                    victims.add(task_id)
            if activity.start < death_time:
                updated.append(
                    replace(activity, end=death_time, ok=False)
                )
            # activities starting at/after the death vanish entirely
        self.activities = updated
        # Events the aborted executions emitted past the death instant
        # never happened (the per-victim "fault" events are emitted by
        # the caller, after this scrub).
        self.trace.events[:] = [
            e
            for e in self.trace.events
            if not (
                e.subject in scrubbed
                and e.time > death_time - EPS
                and e.kind in ("start", "end", "fault", "retry")
            )
        ]
        # tasks whose work was aborted are no longer queued anywhere
        for task_id in victims:
            for queue in self.region_tasks.values():
                if task_id in queue:
                    queue.remove(task_id)
            self._drop_reconf(task_id)
        return victims

    # -- online repair scheduling --------------------------------------------

    def _repair(self, death_time: float, region_id: str) -> bool:
        """Re-plan the residual graph on the surviving fabric.

        Returns True when the executor resumes from the repaired plan;
        False leaves recovery to the caller's fallback/abandon path."""
        completed = frozenset(self.task_end)
        try:
            repair = repair_schedule(
                self.instance,
                completed,
                self.dead_regions.values(),
                suffix=f"*{len(self.repairs) + 1}",
            )
        except RecoveryError as exc:
            self._emit(
                death_time, "repair-failed", region_id, detail=str(exc)
            )
            return False
        resume = death_time + self.policy.repair_latency
        residual = set(repair.schedule.tasks)

        self._install_plan(repair.schedule)
        self.regions_catalog.update(repair.schedule.regions)
        self.pool = []
        self.fallback_impl = {}
        self.reconf_end = {}
        self.failed -= residual
        self.skipped -= residual
        for task_id in residual:
            self.resolved.pop(task_id, None)
        for rid in repair.schedule.regions:
            self.region_free[rid] = resume
        for proc in self.proc_free:
            self.proc_free[proc] = max(self.proc_free[proc], resume)
        for controller in self.controller_free:
            self.controller_free[controller] = max(
                self.controller_free[controller], resume
            )
        self.repairs.append(repair)
        self._emit(
            death_time,
            "repair",
            region_id,
            detail=(
                f"re-scheduled {len(residual)} task(s) on surviving fabric; "
                f"resume at {resume:g}"
            ),
        )
        return True

    # -- deadlock diagnostics -------------------------------------------------

    def _raise_deadlock(self) -> None:
        blocked: dict[str, str] = {}
        for controller, queue in self.controller_queues.items():
            if queue:
                rc = queue[0]
                blocked[f"ICAP{controller}"] = (
                    f"reconfiguration for {rc.outgoing_task!r} waits on "
                    f"ingoing task {rc.ingoing_task!r} (unfinished)"
                )
        for rid, queue in self.region_tasks.items():
            if queue:
                blocked[rid] = self._task_block_reason(queue[0])
        for proc, queue in self.proc_tasks.items():
            if queue:
                blocked[f"P{proc}"] = self._task_block_reason(queue[0])
        for task_id in self.pool:
            blocked[f"pool:{task_id}"] = self._task_block_reason(task_id)
        stuck = sorted(
            set(self.schedule.tasks)
            - set(self.task_end)
            - self.failed
            - self.skipped
        )
        pending: list[str] = []
        for time, region_id in self.deaths:
            pending.append(f"t={time:g} region-death {region_id}")
        for controller in sorted(self.controller_queues):
            for rc in self.controller_queues[controller]:
                pending.append(
                    f"ICAP{controller} reconf:{rc.outgoing_task} "
                    f"(after {rc.ingoing_task!r})"
                )
        for rid in sorted(self.region_tasks):
            if self.region_tasks[rid]:
                pending.append(f"{rid} queue: {self.region_tasks[rid][:6]}")
        for proc in sorted(self.proc_tasks):
            if self.proc_tasks[proc]:
                pending.append(f"P{proc} queue: {self.proc_tasks[proc][:6]}")
        if self.pool:
            pending.append(f"fallback pool: {sorted(self.pool)[:6]}")
        raise DeadlockError(
            blocked,
            stuck,
            pending_events=pending,
            blocking_dependency={
                task_id: dep
                for task_id in stuck
                if (dep := self._earliest_unsatisfied_dependency(task_id))
            },
        )

    def _earliest_unsatisfied_dependency(self, task_id: str) -> str | None:
        """The unfinished predecessor that blocks first (by planned
        start, then id) — the root cause to chase in a deadlock."""
        missing = [
            p
            for p in self.graph.predecessors(task_id)
            if p not in self.task_end and p not in self.resolved
        ]
        if not missing:
            return None
        planned = self.schedule.tasks
        return min(
            missing,
            key=lambda p: (
                planned[p].start if p in planned else float("inf"),
                p,
            ),
        )

    def _task_block_reason(self, task_id: str) -> str:
        missing = [
            p
            for p in self.graph.predecessors(task_id)
            if p not in self.task_end and p not in self.resolved
        ]
        if missing:
            return (
                f"task {task_id!r} waits on unfinished predecessor(s) "
                f"{missing[:4]}"
            )
        if task_id in self.reconf_for and task_id not in self.reconf_end:
            rc = self.reconf_for[task_id]
            return (
                f"task {task_id!r} waits for its bitstream "
                f"(load queued on ICAP{rc.controller})"
            )
        return f"task {task_id!r} is runnable but was never dispatched"
