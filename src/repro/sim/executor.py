"""Discrete-event execution of a schedule.

The schedulers produce *static plans*; a real system dispatches them at
runtime, where task durations differ from the profile numbers.  The
executor replays a schedule as a **dispatch plan** — the orders it
encodes (task sequence per region, per core, and the reconfiguration
order on the controller) are kept, but every start time is re-derived
from actual completion events:

* a task starts when its predecessors have finished (plus communication
  cost when that extension is active), its resource is free, and — for
  hardware tasks — its bitstream has been loaded;
* a reconfiguration starts when its region is idle (ingoing task done)
  and the controller reaches it in the planned controller order.

With a unit jitter model the simulation must reproduce the planned
times *exactly* — the property test that cross-validates the
scheduler's timing engine against an independent executor.  With
non-unit jitter it answers the robustness question: how much does the
plan's makespan degrade when tasks overrun?
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..model import (
    Instance,
    ProcessorPlacement,
    RegionPlacement,
    Schedule,
)

__all__ = ["SimulatedActivity", "SimulationResult", "simulate", "jitter_model"]

EPS = 1e-9


@dataclass(frozen=True)
class SimulatedActivity:
    """One executed activity: a task or a reconfiguration."""

    kind: str  # "task" | "reconfiguration"
    name: str  # task id, or "reconf:<outgoing task>"
    resource: str  # "RRx", "Px" or "ICAP"
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class SimulationResult:
    """Outcome of one simulated execution."""

    activities: list[SimulatedActivity]
    task_start: dict[str, float]
    task_end: dict[str, float]
    makespan: float
    planned_makespan: float

    @property
    def slippage(self) -> float:
        """Relative makespan growth over the plan (0 = on time)."""
        if self.planned_makespan <= 0:
            return 0.0
        return (self.makespan - self.planned_makespan) / self.planned_makespan

    def timeline(self) -> list[SimulatedActivity]:
        return sorted(self.activities, key=lambda a: (a.start, a.name))


def jitter_model(
    factor: float = 0.2, seed: int = 0
) -> Callable[[str, float], float]:
    """Multiplicative uniform jitter: duration x U[1-factor, 1+factor].

    Deterministic per (seed, task) so repeated simulations agree.
    """
    if not (0.0 <= factor < 1.0):
        raise ValueError("jitter factor must be in [0, 1)")

    def model(name: str, duration: float) -> float:
        rng = random.Random(f"{seed}:{name}")
        return duration * rng.uniform(1.0 - factor, 1.0 + factor)

    return model


def simulate(
    instance: Instance,
    schedule: Schedule,
    jitter: Callable[[str, float], float] | Mapping[str, float] | None = None,
    communication_overhead: bool = False,
) -> SimulationResult:
    """Execute ``schedule`` as a dispatch plan (see module docstring)."""
    graph = instance.taskgraph
    arch = instance.architecture

    def actual(name: str, duration: float) -> float:
        if jitter is None:
            return duration
        if callable(jitter):
            return max(EPS, jitter(name, duration))
        return max(EPS, duration * jitter.get(name, 1.0))

    # --- dispatch orders encoded by the plan -----------------------------
    region_sequences = {
        rid: [t.task_id for t in schedule.region_sequence(rid)]
        for rid in schedule.regions
    }
    proc_ids = sorted(
        {
            t.placement.index
            for t in schedule.tasks.values()
            if isinstance(t.placement, ProcessorPlacement)
        }
    )
    proc_sequences = {
        p: [t.task_id for t in schedule.processor_sequence(p)] for p in proc_ids
    }
    controller_order = sorted(
        schedule.reconfigurations, key=lambda r: (r.start, r.region_id)
    )
    controller_queues: dict[int, list] = {}
    for rc in controller_order:
        controller_queues.setdefault(rc.controller, []).append(rc)
    reconf_for: dict[str, object] = {
        rc.outgoing_task: rc for rc in controller_order
    }

    # --- event-driven replay -------------------------------------------------
    task_end: dict[str, float] = {}
    task_start: dict[str, float] = {}
    reconf_end: dict[str, float] = {}  # keyed by outgoing task
    region_free: dict[str, float] = {rid: 0.0 for rid in schedule.regions}
    proc_free: dict[int, float] = {p: 0.0 for p in proc_ids}
    controller_free: dict[int, float] = {}
    activities: list[SimulatedActivity] = []

    def data_ready(task_id: str) -> float | None:
        ready = 0.0
        for pred in graph.predecessors(task_id):
            if pred not in task_end:
                return None
            finish = task_end[pred]
            if communication_overhead:
                finish += graph.comm_cost(pred, task_id)
            ready = max(ready, finish)
        return ready

    # Progress by repeatedly firing the earliest runnable activity; the
    # dispatch orders make each resource's next activity unique, so a
    # simple fixed-point loop terminates in O(activities * resources).
    pending_tasks = set(schedule.tasks)

    def reconfs_pending() -> bool:
        return any(queue for queue in controller_queues.values())

    progress = True
    while (pending_tasks or reconfs_pending()) and progress:
        progress = False

        # 1. each controller executes its reconfigurations in plan order.
        for controller, queue in controller_queues.items():
            while queue:
                rc = queue[0]
                if rc.ingoing_task not in task_end:
                    break  # region still running its previous task
                start = max(
                    task_end[rc.ingoing_task],
                    controller_free.get(controller, 0.0),
                )
                duration = actual(f"reconf:{rc.outgoing_task}", rc.duration)
                end = start + duration
                controller_free[controller] = end
                reconf_end[rc.outgoing_task] = end
                activities.append(
                    SimulatedActivity(
                        kind="reconfiguration",
                        name=f"reconf:{rc.outgoing_task}",
                        resource=f"ICAP{controller}",
                        start=start,
                        end=end,
                    )
                )
                queue.pop(0)
                progress = True

        # 2. each region/core runs its next planned task when possible.
        for rid, sequence in region_sequences.items():
            while sequence:
                task_id = sequence[0]
                ready = data_ready(task_id)
                if ready is None:
                    break
                if task_id in reconf_for and task_id not in reconf_end:
                    break  # bitstream not loaded yet
                start = max(ready, region_free[rid])
                if task_id in reconf_end:
                    start = max(start, reconf_end[task_id])
                planned = schedule.tasks[task_id]
                duration = actual(task_id, planned.duration)
                end = start + duration
                region_free[rid] = end
                task_start[task_id] = start
                task_end[task_id] = end
                activities.append(
                    SimulatedActivity(
                        kind="task", name=task_id, resource=rid,
                        start=start, end=end,
                    )
                )
                sequence.pop(0)
                pending_tasks.discard(task_id)
                progress = True

        for proc, sequence in proc_sequences.items():
            while sequence:
                task_id = sequence[0]
                ready = data_ready(task_id)
                if ready is None:
                    break
                start = max(ready, proc_free[proc])
                planned = schedule.tasks[task_id]
                duration = actual(task_id, planned.duration)
                end = start + duration
                proc_free[proc] = end
                task_start[task_id] = start
                task_end[task_id] = end
                activities.append(
                    SimulatedActivity(
                        kind="task", name=task_id, resource=f"P{proc}",
                        start=start, end=end,
                    )
                )
                sequence.pop(0)
                pending_tasks.discard(task_id)
                progress = True

    if pending_tasks or reconfs_pending():
        stuck = sorted(pending_tasks) + [
            f"reconf:{rc.outgoing_task}"
            for queue in controller_queues.values()
            for rc in queue
        ]
        raise RuntimeError(
            f"dispatch deadlock — plan orders are cyclic for: {stuck[:5]}"
        )

    makespan = max(
        [a.end for a in activities], default=0.0
    )
    return SimulationResult(
        activities=activities,
        task_start=task_start,
        task_end=task_end,
        makespan=makespan,
        planned_makespan=schedule.makespan,
    )
