"""Injectable fault models for the discrete-event executor.

Three fault classes cover the failure modes a partially-reconfigurable
runtime has to survive:

* :class:`TransientTaskFaults` — a task execution attempt fails with a
  fixed probability (SEU-style soft errors, bus timeouts).  Deterministic
  per ``(seed, task, attempt)`` so every run is reproducible.
* :class:`ReconfFaults` — an ICAP bitstream load fails with a fixed
  probability (CRC errors during partial reconfiguration).
* :class:`RegionDeath` — a reconfigurable region permanently dies at a
  given simulation time (fabric damage, persistent configuration-memory
  corruption).  Everything scheduled on the region afterwards needs
  recovery.

A :class:`FaultPlan` aggregates any number of models and is what
:func:`repro.sim.simulate` consumes.  :func:`parse_fault` turns the CLI
spec grammar (``transient:0.1@7``, ``reconf:0.05``,
``region-death:RR1@50``) into model objects.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Union

__all__ = [
    "TransientTaskFaults",
    "ReconfFaults",
    "RegionDeath",
    "FaultModel",
    "FaultPlan",
    "parse_fault",
]


def _check_rate(rate: float) -> None:
    if not (0.0 <= rate < 1.0):
        raise ValueError(f"fault rate must be in [0, 1), got {rate}")


@dataclass(frozen=True)
class TransientTaskFaults:
    """Each task execution attempt fails with probability ``rate``."""

    rate: float
    seed: int = 0

    def __post_init__(self) -> None:
        _check_rate(self.rate)

    def fails(self, task_id: str, attempt: int) -> bool:
        rng = random.Random(f"{self.seed}:task:{task_id}:{attempt}")
        return rng.random() < self.rate


@dataclass(frozen=True)
class ReconfFaults:
    """Each ICAP bitstream load attempt fails with probability ``rate``."""

    rate: float
    seed: int = 0

    def __post_init__(self) -> None:
        _check_rate(self.rate)

    def fails(self, outgoing_task: str, attempt: int) -> bool:
        rng = random.Random(f"{self.seed}:icap:{outgoing_task}:{attempt}")
        return rng.random() < self.rate


@dataclass(frozen=True)
class RegionDeath:
    """Region ``region_id`` permanently dies at simulation time ``time``."""

    region_id: str
    time: float

    def __post_init__(self) -> None:
        if not self.region_id:
            raise ValueError("region-death needs a region id")
        if self.time < 0:
            raise ValueError("region-death time must be >= 0")


FaultModel = Union[TransientTaskFaults, ReconfFaults, RegionDeath]


class FaultPlan:
    """An aggregate of fault models consulted by the executor.

    Empty plans are falsy, so ``simulate`` treats ``FaultPlan([])``
    exactly like ``faults=None``.
    """

    def __init__(self, models: Iterable[FaultModel] = ()) -> None:
        self.task_models: list[TransientTaskFaults] = []
        self.reconf_models: list[ReconfFaults] = []
        self.deaths: list[RegionDeath] = []
        for model in models:
            if isinstance(model, TransientTaskFaults):
                self.task_models.append(model)
            elif isinstance(model, ReconfFaults):
                self.reconf_models.append(model)
            elif isinstance(model, RegionDeath):
                self.deaths.append(model)
            else:
                raise TypeError(f"unknown fault model {model!r}")
        seen: set[str] = set()
        for death in self.deaths:
            if death.region_id in seen:
                raise ValueError(
                    f"duplicate region-death for {death.region_id!r}"
                )
            seen.add(death.region_id)

    @classmethod
    def from_specs(cls, specs: Iterable[str]) -> "FaultPlan":
        return cls([parse_fault(spec) for spec in specs])

    def __bool__(self) -> bool:
        return bool(self.task_models or self.reconf_models or self.deaths)

    def task_fails(self, task_id: str, attempt: int) -> bool:
        return any(m.fails(task_id, attempt) for m in self.task_models)

    def reconf_fails(self, outgoing_task: str, attempt: int) -> bool:
        return any(m.fails(outgoing_task, attempt) for m in self.reconf_models)

    def region_deaths(self) -> list[tuple[float, str]]:
        """Pending deaths as ``(time, region_id)``, earliest first."""
        return sorted((d.time, d.region_id) for d in self.deaths)

    def __repr__(self) -> str:
        parts = (
            [f"transient:{m.rate}@{m.seed}" for m in self.task_models]
            + [f"reconf:{m.rate}@{m.seed}" for m in self.reconf_models]
            + [f"region-death:{d.region_id}@{d.time}" for d in self.deaths]
        )
        return f"FaultPlan({', '.join(parts)})"


def parse_fault(spec: str) -> FaultModel:
    """Parse one CLI fault spec.

    Grammar::

        transient:<rate>[@<seed>]      e.g.  transient:0.1@7
        reconf:<rate>[@<seed>]         e.g.  reconf:0.05
        region-death:<region>@<time>   e.g.  region-death:RR1@50
    """
    kind, sep, rest = spec.partition(":")
    if not sep or not rest:
        raise ValueError(f"malformed fault spec {spec!r} (expected kind:params)")
    try:
        if kind in ("transient", "reconf"):
            rate_text, sep, seed_text = rest.partition("@")
            rate = float(rate_text)
            seed = int(seed_text) if sep else 0
            model = TransientTaskFaults if kind == "transient" else ReconfFaults
            return model(rate=rate, seed=seed)
        if kind == "region-death":
            region, sep, time_text = rest.partition("@")
            if not sep:
                raise ValueError("region-death needs a time: region-death:<id>@<t>")
            return RegionDeath(region_id=region, time=float(time_text))
    except ValueError as exc:
        raise ValueError(f"malformed fault spec {spec!r}: {exc}") from None
    raise ValueError(
        f"unknown fault kind {kind!r} (transient | reconf | region-death)"
    )
