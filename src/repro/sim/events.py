"""Structured per-event trace of a simulated execution.

The executor emits one :class:`ExecutionEvent` for every observable
runtime decision — dispatches, completions, fault injections, retries,
fallbacks, region deaths, repair-scheduler invocations — so recovery
behaviour can be asserted in tests and inspected from the CLI without
parsing free-form logs.  Events are collected in an
:class:`ExecutionTrace`; callers may additionally register an
``on_event`` hook with :func:`repro.sim.simulate` to observe events as
they fire.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ExecutionEvent", "ExecutionTrace"]

# The closed set of event kinds the executors emit.  Kept as a tuple so
# tests and tooling can enumerate it.
EVENT_KINDS = (
    "start",  # an activity (task or reconfiguration) begins
    "end",  # an activity completes successfully
    "fault",  # one execution attempt failed (transient, reconf or death)
    "retry",  # a failed activity is re-attempted after backoff
    "fallback",  # a HW task is re-dispatched to its SW implementation
    "region-death",  # a region permanently died
    "repair",  # the online repair scheduler produced a new plan
    "repair-failed",  # the repair scheduler could not produce a plan
    "skip",  # a task is abandoned because an ancestor failed
    "failed",  # a task is abandoned with no recovery option left
    # -- online runtime (repro.online) ----------------------------------
    "arrival",  # a tenant job arrived
    "admit",  # the online planner admitted/placed a job's tasks
    "replan",  # a re-plan pass ran (detail: incremental | full)
    "deadline-miss",  # a job was still unfinished at its deadline
    "departure",  # a tenant withdrew a job; pending tasks cancelled
    "cancel",  # one task removed from its queue by a departure
    "preempt",  # a running task was preempted for a higher-priority job
    "checkpoint",  # a preempted region's state was saved (cost charged)
    "resume",  # a preempted task resumed from its checkpoint
    "region-alloc",  # the planner allocated a new reconfigurable region
    "region-reclaim",  # an idle region's fabric was reclaimed
    "job-complete",  # the last task of a job finished
)


@dataclass(frozen=True)
class ExecutionEvent:
    """One observable runtime event.

    ``subject`` is a task id, ``reconf:<task>`` or a region id
    (for ``region-death``); ``resource`` is where it happened;
    ``attempt`` counts execution attempts (1 = first try).
    """

    time: float
    kind: str
    subject: str
    resource: str = ""
    detail: str = ""
    attempt: int = 0

    def __str__(self) -> str:
        parts = [f"t={self.time:.3f}", f"[{self.kind}]", self.subject]
        if self.resource:
            parts.append(f"on {self.resource}")
        if self.attempt:
            parts.append(f"attempt {self.attempt}")
        if self.detail:
            parts.append(f"— {self.detail}")
        return " ".join(parts)


@dataclass
class ExecutionTrace:
    """Chronological record of every event of one simulated execution."""

    events: list[ExecutionEvent] = field(default_factory=list)

    def add(self, event: ExecutionEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def of(self, *kinds: str) -> list[ExecutionEvent]:
        """Events of the given kind(s), in emission order."""
        wanted = set(kinds)
        return [e for e in self.events if e.kind in wanted]

    def counts(self) -> dict[str, int]:
        """Event count per kind (only kinds that occurred)."""
        out: dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def chronological(self) -> list[ExecutionEvent]:
        """Events sorted by time (retry chains are emitted inline, so
        raw emission order is only approximately chronological)."""
        indexed = sorted(
            enumerate(self.events), key=lambda pair: (pair[1].time, pair[0])
        )
        return [event for _, event in indexed]

    def render(self, kinds: tuple[str, ...] | None = None) -> str:
        """Human-readable listing, optionally filtered to some kinds."""
        events = self.chronological()
        if kinds is not None:
            wanted = set(kinds)
            events = [e for e in events if e.kind in wanted]
        return "\n".join(str(e) for e in events)
