"""Discrete-event execution of schedules: runtime replay, jitter,
fault injection and retry/fallback/repair recovery."""

from .events import ExecutionEvent, ExecutionTrace
from .executor import (
    DeadlockError,
    SimulatedActivity,
    SimulationResult,
    jitter_model,
    simulate,
)
from .faults import (
    FaultPlan,
    ReconfFaults,
    RegionDeath,
    TransientTaskFaults,
    parse_fault,
)
from .recovery import (
    RecoveryError,
    RecoveryPolicy,
    RepairResult,
    degraded_architecture,
    repair_schedule,
    residual_instance,
)

__all__ = [
    "ExecutionEvent",
    "ExecutionTrace",
    "DeadlockError",
    "SimulatedActivity",
    "SimulationResult",
    "jitter_model",
    "simulate",
    "FaultPlan",
    "ReconfFaults",
    "RegionDeath",
    "TransientTaskFaults",
    "parse_fault",
    "RecoveryError",
    "RecoveryPolicy",
    "RepairResult",
    "degraded_architecture",
    "repair_schedule",
    "residual_instance",
]
