"""Discrete-event execution of schedules (runtime replay + jitter)."""

from .executor import SimulatedActivity, SimulationResult, jitter_model, simulate

__all__ = ["SimulatedActivity", "SimulationResult", "jitter_model", "simulate"]
