"""Problem instance: architecture + application task graph.

Bundles everything a scheduler needs, plus JSON round-tripping so
benchmark suites can be stored and shared.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from .architecture import Architecture
from .taskgraph import TaskGraph

__all__ = ["Instance"]


@dataclass
class Instance:
    """One scheduling problem: schedule ``taskgraph`` on ``architecture``."""

    architecture: Architecture
    taskgraph: TaskGraph
    name: str = ""
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            self.name = self.taskgraph.name

    def validate(self, require_sw: bool = True) -> None:
        """Structural validation of the instance (Section III contract).

        Besides graph checks, every HW implementation must individually
        fit on the fabric — a demand exceeding ``maxRes`` could never be
        placed and indicates a malformed instance.
        """
        self.taskgraph.validate(require_sw=require_sw)
        for task in self.taskgraph:
            for impl in task.hw_implementations:
                if not impl.resources.fits_in(self.architecture.max_res):
                    raise ValueError(
                        f"task {task.id!r} implementation {impl.name!r} "
                        f"exceeds fabric capacity"
                    )

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "architecture": self.architecture.to_dict(),
            "taskgraph": self.taskgraph.to_dict(),
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Instance":
        return cls(
            architecture=Architecture.from_dict(data["architecture"]),
            taskgraph=TaskGraph.from_dict(data["taskgraph"]),
            name=data.get("name", ""),
            metadata=dict(data.get("metadata", {})),
        )

    def to_json(self, path: str | Path | None = None, indent: int = 2) -> str:
        """Serialize with fully deterministic ordering.

        Keys are sorted and ``to_dict`` orders the task/edge lists, so
        the same (or an equal) instance always produces the same bytes
        — the prerequisite for stable content hashes.
        """
        text = json.dumps(self.to_dict(), indent=indent, sort_keys=True)
        if path is not None:
            Path(path).write_text(text)
        return text

    def canonical_json(self) -> str:
        """The byte-stable canonical form (sorted keys, no whitespace)."""
        from .canonical import canonical_dumps

        return canonical_dumps(self.to_dict())

    def content_hash(self) -> str:
        """SHA-256 hex digest of :meth:`canonical_json` — the identity
        the engine's result store addresses instances by."""
        from .canonical import content_hash

        return content_hash(self.to_dict())

    @classmethod
    def from_json(cls, source: str | Path) -> "Instance":
        """Load from a file path or directly from a JSON string."""
        text = str(source)
        try:
            path = Path(source)
            if path.exists():
                text = path.read_text()
        except OSError:
            pass  # raw JSON text longer than a legal file name
        return cls.from_dict(json.loads(text))

    def __repr__(self) -> str:
        return (
            f"Instance({self.name!r}, tasks={len(self.taskgraph)}, "
            f"arch={self.architecture.name!r})"
        )
