"""Energy/power cost model for schedules (ROADMAP item 3).

Follows the accounting of "Power Aware Scheduling of Tasks on FPGAs in
Data Centers" (arXiv 2311.11015): a device draws a *static* power
whenever it is on, each configured region draws *dynamic* power
proportional to the resources it occupies while a task executes in it,
and every partial reconfiguration costs the Eq.-2 load time times the
ICAP controller power.

Units: power in watts, time in microseconds (the repo-wide convention),
so every energy figure below is in **microjoules** (W x us = uJ).

The single :func:`energy_breakdown` function is shared by the fleet
scheduler and the independent validator — exactly like
``Architecture.reconf_time`` is shared by schedulers and
``validate.check_schedule`` — so "validator-recomputed energy equals
scheduler-reported energy" holds bit-exactly, not merely within a
tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .architecture import Architecture
    from .schedule import Schedule

__all__ = [
    "PowerModel",
    "EnergyBreakdown",
    "energy_breakdown",
    "zero_power",
    "zedboard_power",
]


@dataclass(frozen=True)
class PowerModel:
    """Immutable per-device power figures.

    Attributes
    ----------
    static_w:
        Static power (W) drawn for the whole span of the schedule,
        regardless of activity.
    dynamic_w:
        Dynamic power (W) per *unit of region resource* per resource
        type, drawn while a hardware task executes in the region.  The
        whole region is configured, so the charge is on the region's
        (quantized) resources, not the implementation's raw demand.
    icap_w:
        Power (W) drawn by the reconfiguration controller while a
        bitstream is being loaded.
    """

    static_w: float = 0.0
    dynamic_w: Mapping[str, float] | None = None
    icap_w: float = 0.0

    def __post_init__(self) -> None:
        if self.static_w < 0:
            raise ValueError("static_w must be >= 0")
        if self.icap_w < 0:
            raise ValueError("icap_w must be >= 0")
        dynamic = dict(self.dynamic_w or {})
        bad = [r for r, w in dynamic.items() if w < 0]
        if bad:
            raise ValueError(f"dynamic_w must be >= 0, offending types: {bad}")
        object.__setattr__(self, "dynamic_w", dynamic)

    def is_zero(self) -> bool:
        return (
            self.static_w == 0.0
            and self.icap_w == 0.0
            and all(w == 0.0 for w in self.dynamic_w.values())
        )

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "static_w": self.static_w,
            "dynamic_w": dict(self.dynamic_w),
            "icap_w": self.icap_w,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "PowerModel":
        return cls(
            static_w=data.get("static_w", 0.0),
            dynamic_w=dict(data.get("dynamic_w") or {}),
            icap_w=data.get("icap_w", 0.0),
        )


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy totals in microjoules, split by source."""

    static_j: float = 0.0
    dynamic_j: float = 0.0
    reconfiguration_j: float = 0.0

    @property
    def total_j(self) -> float:
        return self.static_j + self.dynamic_j + self.reconfiguration_j

    def combined(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            static_j=self.static_j + other.static_j,
            dynamic_j=self.dynamic_j + other.dynamic_j,
            reconfiguration_j=self.reconfiguration_j + other.reconfiguration_j,
        )

    def to_dict(self) -> dict:
        return {
            "static_j": self.static_j,
            "dynamic_j": self.dynamic_j,
            "reconfiguration_j": self.reconfiguration_j,
            "total_j": self.total_j,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "EnergyBreakdown":
        return cls(
            static_j=data.get("static_j", 0.0),
            dynamic_j=data.get("dynamic_j", 0.0),
            reconfiguration_j=data.get("reconfiguration_j", 0.0),
        )


def energy_breakdown(
    schedule: "Schedule",
    architecture: "Architecture",
    power: PowerModel,
    span: float | None = None,
) -> EnergyBreakdown:
    """Exact energy accounting for one device schedule.

    ``span`` overrides the window the static power is charged over
    (defaults to the schedule's local makespan).  The summation order is
    fixed (tasks by id, resource types sorted) so repeated calls are
    bit-identical — the validator relies on this.
    """
    if span is None:
        span = schedule.makespan
    static_j = power.static_w * span

    dynamic_j = 0.0
    for task_id in sorted(schedule.tasks):
        placed = schedule.tasks[task_id]
        region_id = getattr(placed.placement, "region_id", None)
        if region_id is None:
            continue
        region = schedule.regions[region_id]
        duration = placed.end - placed.start
        for rtype in sorted(region.resources):
            rate = power.dynamic_w.get(rtype, 0.0)
            if rate:
                dynamic_j += region.resources[rtype] * rate * duration

    reconfiguration_j = 0.0
    for reconf in schedule.reconfigurations:
        reconfiguration_j += (reconf.end - reconf.start) * power.icap_w

    return EnergyBreakdown(
        static_j=static_j,
        dynamic_j=dynamic_j,
        reconfiguration_j=reconfiguration_j,
    )


def zero_power() -> PowerModel:
    """The neutral model: every schedule costs exactly 0 uJ."""
    return PowerModel()


def zedboard_power() -> PowerModel:
    """Representative figures for a ZedBoard-class Zynq-7000 fabric.

    Order-of-magnitude numbers from vendor power estimators: ~0.25 W
    fabric static, per-unit dynamic draw that reaches ~0.5 W with the
    whole fabric active, and ~0.15 W for the ICAP while loading.
    """
    return PowerModel(
        static_w=0.25,
        dynamic_w={"CLB": 2.0e-5, "BRAM": 1.5e-3, "DSP": 8.0e-4},
        icap_w=0.15,
    )
