"""Tasks and their hardware/software implementations.

Section III of the paper: each application task ``t`` has a set of
software implementations ``I_t^S`` (run on a processor core, no fabric
resources) and hardware implementations ``I_t^H`` (run in a
reconfigurable region, with a resource demand ``res_{i,r}``).  The
paper assumes at least one SW implementation per task; the model keeps
that as a validation option because some extensions (HW-only
accelerators) relax it.

Implementations are *library* objects: two tasks may reference the same
:class:`Implementation` instance (or an equal one), which is what makes
module reuse possible — subsequent tasks in the same region that share
an implementation do not need a reconfiguration in between.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable

from .resources import ResourceVector

__all__ = ["ImplKind", "Implementation", "Task"]


class ImplKind(enum.Enum):
    """Whether an implementation targets the fabric or a processor core."""

    HW = "hw"
    SW = "sw"


@dataclass(frozen=True)
class Implementation:
    """One way of executing a task.

    Attributes
    ----------
    name:
        Library identifier.  Equal names denote the *same* bitstream /
        binary, which enables module reuse across tasks.
    kind:
        :class:`ImplKind.HW` or :class:`ImplKind.SW`.
    time:
        Execution time ``time_i`` in microseconds (any consistent unit
        works; the repository convention is microseconds).
    resources:
        Fabric demand ``res_{i,r}``; must be empty for SW
        implementations and non-empty for HW ones.
    """

    name: str
    kind: ImplKind
    time: float
    resources: ResourceVector = field(default_factory=ResourceVector)

    def __post_init__(self) -> None:
        if self.time <= 0:
            raise ValueError(f"implementation {self.name!r}: time must be > 0")
        if self.kind is ImplKind.SW and not self.resources.is_zero():
            raise ValueError(
                f"SW implementation {self.name!r} must not demand fabric resources"
            )
        if self.kind is ImplKind.HW and self.resources.is_zero():
            raise ValueError(
                f"HW implementation {self.name!r} must demand fabric resources"
            )

    @property
    def is_hw(self) -> bool:
        return self.kind is ImplKind.HW

    @property
    def is_sw(self) -> bool:
        return self.kind is ImplKind.SW

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind.value,
            "time": self.time,
            "resources": self.resources.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Implementation":
        return cls(
            name=data["name"],
            kind=ImplKind(data["kind"]),
            time=data["time"],
            resources=ResourceVector(data.get("resources", {})),
        )

    @classmethod
    def sw(cls, name: str, time: float) -> "Implementation":
        """Convenience constructor for a software implementation."""
        return cls(name=name, kind=ImplKind.SW, time=time)

    @classmethod
    def hw(cls, name: str, time: float, resources: dict | ResourceVector) -> "Implementation":
        """Convenience constructor for a hardware implementation."""
        if not isinstance(resources, ResourceVector):
            resources = ResourceVector(resources)
        return cls(name=name, kind=ImplKind.HW, time=time, resources=resources)


@dataclass(frozen=True)
class Task:
    """An application task with its candidate implementations ``I_t``."""

    id: str
    implementations: tuple[Implementation, ...]

    def __post_init__(self) -> None:
        if not self.id:
            raise ValueError("task id must be non-empty")
        if not self.implementations:
            raise ValueError(f"task {self.id!r} has no implementations")
        names = [impl.name for impl in self.implementations]
        if len(set(names)) != len(names):
            raise ValueError(f"task {self.id!r} has duplicate implementation names")

    @staticmethod
    def of(id: str, implementations: Iterable[Implementation]) -> "Task":
        return Task(id=id, implementations=tuple(implementations))

    @property
    def hw_implementations(self) -> tuple[Implementation, ...]:
        """``I_t^H`` — the hardware candidates."""
        return tuple(i for i in self.implementations if i.is_hw)

    @property
    def sw_implementations(self) -> tuple[Implementation, ...]:
        """``I_t^S`` — the software candidates."""
        return tuple(i for i in self.implementations if i.is_sw)

    @property
    def has_hw(self) -> bool:
        return any(i.is_hw for i in self.implementations)

    @property
    def has_sw(self) -> bool:
        return any(i.is_sw for i in self.implementations)

    def fastest_sw(self) -> Implementation:
        """The SW implementation with the lowest execution time.

        The PA steps fall back to this whenever a HW task cannot be
        placed (Section V-C step 3).
        """
        sw = self.sw_implementations
        if not sw:
            raise ValueError(f"task {self.id!r} has no SW implementation")
        return min(sw, key=lambda i: (i.time, i.name))

    def fastest(self) -> Implementation:
        """The overall fastest implementation (defines maxT in Eq. 4)."""
        return min(self.implementations, key=lambda i: (i.time, i.name))

    def implementation(self, name: str) -> Implementation:
        for impl in self.implementations:
            if impl.name == name:
                return impl
        raise KeyError(f"task {self.id!r} has no implementation named {name!r}")

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "implementations": [i.to_dict() for i in self.implementations],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Task":
        return cls(
            id=data["id"],
            implementations=tuple(
                Implementation.from_dict(d) for d in data["implementations"]
            ),
        )
