"""A fleet of heterogeneous reconfigurable devices (ROADMAP item 3).

The paper targets one ZedBoard-class SoC; a data-center deployment runs
many devices with mixed fabric sizes, ICAP throughputs and power
envelopes.  A :class:`Fleet` is an ordered collection of named
:class:`~repro.model.architecture.Architecture` devices plus a single
inter-device communication penalty: every task-graph edge whose
endpoints land on different devices pays ``comm_penalty`` microseconds
on top of the edge's own communication cost (the fabric-internal edge
cost already modelled by the task graph).

Each device's energy figures ride on ``Architecture.power`` — the
optional field that is omitted from the canonical serialization when
absent, so fleets extend the model layer without moving any
pre-existing instance hash or cache key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from .architecture import Architecture
from .canonical import canonical_dumps, content_hash
from .power import PowerModel, zero_power

__all__ = ["FleetDevice", "Fleet"]


@dataclass(frozen=True)
class FleetDevice:
    """One device slot in a fleet: a stable id plus its architecture."""

    id: str
    architecture: Architecture

    def __post_init__(self) -> None:
        if not self.id:
            raise ValueError("fleet device needs a non-empty id")

    @property
    def power(self) -> PowerModel:
        return self.architecture.power or zero_power()

    def to_dict(self) -> dict:
        return {"id": self.id, "architecture": self.architecture.to_dict()}

    @classmethod
    def from_dict(cls, data: Mapping) -> "FleetDevice":
        return cls(
            id=data["id"],
            architecture=Architecture.from_dict(data["architecture"]),
        )


@dataclass(frozen=True)
class Fleet:
    """An ordered, heterogeneous collection of devices."""

    devices: tuple[FleetDevice, ...]
    comm_penalty: float = 0.0
    name: str = "fleet"

    def __post_init__(self) -> None:
        object.__setattr__(self, "devices", tuple(self.devices))
        if not self.devices:
            raise ValueError("fleet needs at least one device")
        ids = [device.id for device in self.devices]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate fleet device ids: {ids}")
        if self.comm_penalty < 0:
            raise ValueError("comm_penalty must be >= 0")

    def __len__(self) -> int:
        return len(self.devices)

    def device_ids(self) -> tuple[str, ...]:
        return tuple(device.id for device in self.devices)

    def device(self, device_id: str) -> FleetDevice:
        for device in self.devices:
            if device.id == device_id:
                return device
        raise KeyError(f"unknown fleet device: {device_id!r}")

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "comm_penalty": self.comm_penalty,
            "devices": [device.to_dict() for device in self.devices],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Fleet":
        return cls(
            devices=tuple(
                FleetDevice.from_dict(item) for item in data["devices"]
            ),
            comm_penalty=data.get("comm_penalty", 0.0),
            name=data.get("name", "fleet"),
        )

    def canonical_json(self) -> str:
        return canonical_dumps(self.to_dict())

    def content_hash(self) -> str:
        return content_hash(self.to_dict())

    @classmethod
    def single(cls, architecture: Architecture, device_id: str = "d0") -> "Fleet":
        """A one-device fleet wrapping an existing architecture."""
        return cls(devices=(FleetDevice(device_id, architecture),))
