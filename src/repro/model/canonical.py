"""Canonical serialization and content hashing.

The engine's result store (``repro.engine.store``) addresses outcomes
by the content of the request that produced them, so two processes —
or two runs weeks apart — must serialize the same instance and options
to the *same bytes*.  JSON alone does not guarantee that: dict key
order, float formatting and container types all leak representation
details.  This module pins them down:

* keys are sorted at every nesting level,
* separators carry no whitespace,
* floats are rejected when non-finite, ``-0.0`` normalizes to ``0.0``,
  and integral floats are emitted as ints (``3.0`` and ``3`` describe
  the same execution time); non-integral floats rely on CPython's
  shortest-``repr`` float formatting, which is stable across processes
  and platforms,
* tuples flatten to lists, arbitrary mappings to plain dicts,
* anything else is a :class:`TypeError` — canonical content must be
  built from JSON-safe values, not live objects.

``content_hash`` is SHA-256 over the canonical UTF-8 bytes; the hex
digest is the address used by the store's on-disk layout.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any, Mapping

__all__ = [
    "canonical_payload",
    "canonical_dumps",
    "content_hash",
    "instance_hash",
]


def canonical_payload(obj: Any) -> Any:
    """Normalize ``obj`` into the canonical JSON-safe shape (see module
    docstring).  Raises :class:`TypeError` on non-JSON-safe values and
    :class:`ValueError` on non-finite floats."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        if not math.isfinite(obj):
            raise ValueError(f"non-finite float {obj!r} has no canonical form")
        if obj == 0.0:
            return 0  # collapses -0.0 / 0.0 / 0
        if obj.is_integer():
            return int(obj)
        return obj
    if isinstance(obj, Mapping):
        out = {}
        for key in obj:
            if not isinstance(key, str):
                raise TypeError(f"canonical mapping keys must be str, got {key!r}")
            out[key] = canonical_payload(obj[key])
        return out
    if isinstance(obj, (list, tuple)):
        return [canonical_payload(item) for item in obj]
    raise TypeError(
        f"{type(obj).__name__!r} is not canonically serializable; "
        "convert it with .to_dict() first"
    )


def canonical_dumps(obj: Any) -> str:
    """The canonical JSON text of ``obj`` — byte-stable across processes."""
    return json.dumps(
        canonical_payload(obj),
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
    )


def content_hash(obj: Any) -> str:
    """SHA-256 hex digest of the canonical serialization of ``obj``."""
    return hashlib.sha256(canonical_dumps(obj).encode("utf-8")).hexdigest()


def instance_hash(instance) -> str:
    """Content hash of a :class:`~repro.model.instance.Instance`.

    Stable across processes and across serialization round-trips:
    ``Instance.to_dict`` orders tasks and edges canonically, so
    ``instance_hash(Instance.from_json(i.to_json())) == instance_hash(i)``.
    """
    return content_hash(instance.to_dict())
