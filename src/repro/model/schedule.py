"""Schedule objects — the output contract of Section III.

A complete solution consists of:

1. the set of reconfigurable regions ``S`` with their resource
   requirements ``res_{s,r}`` (:class:`Region`),
2. a mapping of every task to an implementation and to either a
   processor core or a region (:class:`Placement` inside
   :class:`ScheduledTask`),
3. a time slot per task,
4. the reconfiguration tasks with their time slots
   (:class:`Reconfiguration`).

Intervals are half-open ``[start, end)``: two activities whose
intervals merely touch do not conflict.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping, Optional

from .architecture import Architecture
from .resources import ResourceVector
from .task import Implementation
from .taskgraph import TaskGraph

__all__ = [
    "Placement",
    "ProcessorPlacement",
    "RegionPlacement",
    "Region",
    "ScheduledTask",
    "Reconfiguration",
    "Schedule",
]


@dataclass(frozen=True)
class ProcessorPlacement:
    """Task runs in software on processor core ``index``."""

    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("processor index must be >= 0")

    def to_dict(self) -> dict:
        return {"kind": "processor", "index": self.index}

    def __str__(self) -> str:
        return f"P{self.index}"


@dataclass(frozen=True)
class RegionPlacement:
    """Task runs in hardware inside reconfigurable region ``region_id``."""

    region_id: str

    def to_dict(self) -> dict:
        return {"kind": "region", "region_id": self.region_id}

    def __str__(self) -> str:
        return self.region_id


Placement = ProcessorPlacement | RegionPlacement


def placement_from_dict(data: Mapping) -> Placement:
    if data["kind"] == "processor":
        return ProcessorPlacement(index=data["index"])
    if data["kind"] == "region":
        return RegionPlacement(region_id=data["region_id"])
    raise ValueError(f"unknown placement kind {data['kind']!r}")


@dataclass(frozen=True)
class Region:
    """A reconfigurable region ``s`` with its resource envelope.

    The bitstream size and reconfiguration time follow Eq. 1/2 and are
    computed against a given :class:`Architecture` so every component
    shares identical estimates.
    """

    id: str
    resources: ResourceVector

    def __post_init__(self) -> None:
        if self.resources.is_zero():
            raise ValueError(f"region {self.id!r} has no resources")

    def bitstream_bits(self, arch: Architecture) -> float:
        return arch.bitstream_bits(self.resources)

    def reconf_time(self, arch: Architecture) -> float:
        return arch.reconf_time(self.resources)

    def to_dict(self) -> dict:
        return {"id": self.id, "resources": self.resources.to_dict()}

    @classmethod
    def from_dict(cls, data: Mapping) -> "Region":
        return cls(id=data["id"], resources=ResourceVector(data["resources"]))


@dataclass(frozen=True)
class ScheduledTask:
    """A task with its chosen implementation, placement and time slot."""

    task_id: str
    implementation: Implementation
    placement: Placement
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"task {self.task_id!r}: end < start")
        hw_placed = isinstance(self.placement, RegionPlacement)
        if self.implementation.is_hw != hw_placed:
            raise ValueError(
                f"task {self.task_id!r}: {self.implementation.kind.value} "
                f"implementation placed on {self.placement}"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def is_hw(self) -> bool:
        return self.implementation.is_hw

    def to_dict(self) -> dict:
        return {
            "task_id": self.task_id,
            "implementation": self.implementation.to_dict(),
            "placement": self.placement.to_dict(),
            "start": self.start,
            "end": self.end,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ScheduledTask":
        return cls(
            task_id=data["task_id"],
            implementation=Implementation.from_dict(data["implementation"]),
            placement=placement_from_dict(data["placement"]),
            start=data["start"],
            end=data["end"],
        )


@dataclass(frozen=True)
class Reconfiguration:
    """A reconfiguration task between two subsequent tasks of a region.

    ``ingoing_task`` finished using the region; ``outgoing_task`` needs
    a new bitstream loaded before it can start (Section V-G).
    """

    region_id: str
    ingoing_task: str
    outgoing_task: str
    start: float
    end: float
    controller: int = 0  # which reconfigurator performs the load

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"reconfiguration for {self.outgoing_task!r}: end < start"
            )
        if self.controller < 0:
            raise ValueError("controller index must be >= 0")

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "region_id": self.region_id,
            "ingoing_task": self.ingoing_task,
            "outgoing_task": self.outgoing_task,
            "start": self.start,
            "end": self.end,
            "controller": self.controller,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Reconfiguration":
        return cls(
            region_id=data["region_id"],
            ingoing_task=data["ingoing_task"],
            outgoing_task=data["outgoing_task"],
            start=data["start"],
            end=data["end"],
            controller=data.get("controller", 0),
        )


@dataclass
class Schedule:
    """A complete solution for one problem instance.

    The object is a passive record; use
    :func:`repro.validate.check_schedule` for the full invariant suite
    and :class:`repro.analysis.gantt` for rendering.
    """

    tasks: dict[str, ScheduledTask]
    regions: dict[str, Region]
    reconfigurations: list[Reconfiguration] = field(default_factory=list)
    scheduler: str = ""
    metadata: dict = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        """Overall application execution time (the paper's objective)."""
        ends = [t.end for t in self.tasks.values()]
        ends.extend(r.end for r in self.reconfigurations)
        return max(ends, default=0.0)

    # -- queries -------------------------------------------------------------

    def hw_tasks(self) -> list[ScheduledTask]:
        return [t for t in self.tasks.values() if t.is_hw]

    def sw_tasks(self) -> list[ScheduledTask]:
        return [t for t in self.tasks.values() if not t.is_hw]

    def region_sequence(self, region_id: str) -> list[ScheduledTask]:
        """Tasks hosted by a region, in start-time order."""
        hosted = [
            t
            for t in self.tasks.values()
            if isinstance(t.placement, RegionPlacement)
            and t.placement.region_id == region_id
        ]
        return sorted(hosted, key=lambda t: (t.start, t.task_id))

    def processor_sequence(self, index: int) -> list[ScheduledTask]:
        """Tasks mapped to a core, in start-time order."""
        hosted = [
            t
            for t in self.tasks.values()
            if isinstance(t.placement, ProcessorPlacement)
            and t.placement.index == index
        ]
        return sorted(hosted, key=lambda t: (t.start, t.task_id))

    def total_region_resources(self) -> ResourceVector:
        """Sum of ``res_{s,r}`` over all regions (capacity check input)."""
        total = ResourceVector.zero()
        for region in self.regions.values():
            total = total + region.resources
        return total

    def total_reconfiguration_time(self) -> float:
        return sum(r.duration for r in self.reconfigurations)

    def shifted(self, delta: float) -> "Schedule":
        """A copy with every activity shifted by ``delta`` (testing aid)."""
        return Schedule(
            tasks={
                tid: replace(t, start=t.start + delta, end=t.end + delta)
                for tid, t in self.tasks.items()
            },
            regions=dict(self.regions),
            reconfigurations=[
                replace(r, start=r.start + delta, end=r.end + delta)
                for r in self.reconfigurations
            ],
            scheduler=self.scheduler,
            metadata=dict(self.metadata),
        )

    # -- serialization ----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "scheduler": self.scheduler,
            "makespan": self.makespan,
            "tasks": [t.to_dict() for t in self.tasks.values()],
            "regions": [r.to_dict() for r in self.regions.values()],
            "reconfigurations": [r.to_dict() for r in self.reconfigurations],
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Schedule":
        tasks = [ScheduledTask.from_dict(d) for d in data["tasks"]]
        regions = [Region.from_dict(d) for d in data["regions"]]
        return cls(
            tasks={t.task_id: t for t in tasks},
            regions={r.id: r for r in regions},
            reconfigurations=[
                Reconfiguration.from_dict(d) for d in data.get("reconfigurations", [])
            ],
            scheduler=data.get("scheduler", ""),
            metadata=dict(data.get("metadata", {})),
        )

    def __repr__(self) -> str:
        return (
            f"Schedule(scheduler={self.scheduler!r}, tasks={len(self.tasks)}, "
            f"regions={len(self.regions)}, reconfs={len(self.reconfigurations)}, "
            f"makespan={self.makespan:.1f})"
        )
