"""Target architecture description (Section III).

The architecture is a SoC with ``|P|`` homogeneous processor cores and a
partially-reconfigurable FPGA described by:

* the resource types ``R`` with availability ``maxRes_r``,
* the per-resource configuration-bit cost ``bit_r`` (derived from the
  number of configuration frames per fabric tile, per Vipin & Fahmy),
* the reconfiguration throughput ``recFreq`` of the single
  reconfiguration controller (ICAP).

Equation 1 (bitstream size of a region) and Equation 2 (reconfiguration
time) live here because every other component — the PA scheduler, the
IS-k baseline and the validator — must share the exact same estimates.

Time unit convention: microseconds.  ``rec_freq`` is therefore in
bits per microsecond (the ZedBoard ICAP moves 32 bit @ 100 MHz =
3200 bits/us).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from .power import PowerModel
from .resources import ResourceVector

__all__ = ["Architecture", "zedboard"]


@dataclass(frozen=True)
class Architecture:
    """Immutable architecture description.

    Attributes
    ----------
    name:
        Human-readable identifier, e.g. ``"zedboard-xc7z020"``.
    processors:
        Number of homogeneous processor cores (``|P|``).
    max_res:
        ``maxRes_r`` — fabric availability per resource type.
    bit_per_resource:
        ``bit_r`` — average configuration bits per unit of resource.
    rec_freq:
        ``recFreq`` — reconfiguration throughput in bits per
        microsecond.
    """

    name: str
    processors: int
    max_res: ResourceVector
    bit_per_resource: Mapping[str, float]
    rec_freq: float
    region_quantum: Mapping[str, int] | None = None
    # The paper assumes a single reconfiguration controller (ICAP);
    # reference [8] generalizes to several — supported as an extension.
    reconfigurators: int = 1
    # Optional energy model (ROADMAP item 3).  ``None`` means "no power
    # accounting" and is omitted from the canonical serialization so
    # every pre-existing instance hash and cache key keeps its bytes.
    power: PowerModel | None = None

    def __post_init__(self) -> None:
        if self.processors < 1:
            raise ValueError("architecture needs at least one processor core")
        if self.reconfigurators < 1:
            raise ValueError("architecture needs at least one reconfigurator")
        if self.rec_freq <= 0:
            raise ValueError("rec_freq must be > 0")
        if self.max_res.is_zero():
            raise ValueError("architecture has no fabric resources")
        missing = [r for r in self.max_res if r not in self.bit_per_resource]
        if missing:
            raise ValueError(f"bit_per_resource missing types: {missing}")
        bad = [r for r, b in self.bit_per_resource.items() if b <= 0]
        if bad:
            raise ValueError(f"bit_per_resource must be > 0, offending types: {bad}")
        # Freeze the mapping so the dataclass is truly immutable/hashable.
        object.__setattr__(self, "bit_per_resource", dict(self.bit_per_resource))
        if self.region_quantum is not None:
            bad = [r for r, q in self.region_quantum.items() if q < 1]
            if bad:
                raise ValueError(f"region_quantum must be >= 1, offending: {bad}")
            object.__setattr__(self, "region_quantum", dict(self.region_quantum))

    @property
    def resource_types(self) -> tuple[str, ...]:
        """``R`` in a deterministic order."""
        return tuple(sorted(self.max_res))

    # -- Eq. 4 helper weights ---------------------------------------------

    def resource_weights(self) -> dict[str, float]:
        """``weightRes_r = 1 - maxRes_r / sum_r' maxRes_r'`` (Eq. 4).

        Scarce resource types get a weight close to 1, abundant ones a
        small weight, so the cost metric (Eq. 3) and efficiency index
        (Eq. 5) penalise demands on scarce resources more.
        """
        total = sum(self.max_res[r] for r in self.max_res)
        return {r: 1.0 - self.max_res[r] / total for r in self.max_res}

    # -- Eq. 1 / Eq. 2 -------------------------------------------------------

    def bitstream_bits(self, resources: ResourceVector) -> float:
        """Eq. 1: ``bit_s = sum_r res_{s,r} * bit_r``."""
        return resources.weighted_sum(self.bit_per_resource)

    def reconf_time(self, resources: ResourceVector) -> float:
        """Eq. 2: ``reconf_s = bit_s / recFreq`` (microseconds)."""
        return self.bitstream_bits(resources) / self.rec_freq

    def quantize_region(self, demand: ResourceVector) -> ResourceVector:
        """Round a region demand up to the fabric's placement granularity.

        A reconfigurable region is a rectangle of whole fabric cells —
        a demand of 3 DSP48 physically consumes a full DSP column cell
        (20 DSP48 on 7-series).  Sizing regions to cell multiples keeps
        the scheduler's capacity bookkeeping consistent with what the
        floorplanner can actually place, and makes the Eq. 1 bitstream
        estimate cover the *whole* region, as reconfiguration does.
        No-op when the architecture defines no ``region_quantum``.
        """
        if self.region_quantum is None:
            return demand
        out: dict[str, int] = {}
        for rtype, amount in demand.items():
            quantum = self.region_quantum.get(rtype, 1)
            out[rtype] = -(-amount // quantum) * quantum  # ceil to multiple
        return ResourceVector(out)

    # -- feasibility-loop support (Section V-H) ---------------------------------

    def with_max_res(self, max_res: ResourceVector) -> "Architecture":
        """A copy with a different fabric availability.

        Used by the PA feasibility loop, which virtually shrinks
        ``maxRes_r`` by a constant factor when the floorplanner rejects
        a set of regions.
        """
        return Architecture(
            name=self.name,
            processors=self.processors,
            max_res=max_res,
            bit_per_resource=self.bit_per_resource,
            rec_freq=self.rec_freq,
            region_quantum=self.region_quantum,
            reconfigurators=self.reconfigurators,
            power=self.power,
        )

    def shrunk(self, factor: float) -> "Architecture":
        """A copy with ``maxRes_r`` scaled by ``factor`` (< 1)."""
        return self.with_max_res(self.max_res.scaled(factor))

    # -- serialization ------------------------------------------------------------

    def to_dict(self) -> dict:
        payload = {
            "name": self.name,
            "processors": self.processors,
            "max_res": self.max_res.to_dict(),
            "bit_per_resource": dict(self.bit_per_resource),
            "rec_freq": self.rec_freq,
            "region_quantum": (
                dict(self.region_quantum) if self.region_quantum else None
            ),
            "reconfigurators": self.reconfigurators,
        }
        # Omitted when absent: architectures without an energy model keep
        # the exact serialization (and hence content_hash / cache-key
        # bytes) they had before the power extension existed.
        if self.power is not None:
            payload["power"] = self.power.to_dict()
        return payload

    @classmethod
    def from_dict(cls, data: Mapping) -> "Architecture":
        power = data.get("power")
        return cls(
            name=data["name"],
            processors=data["processors"],
            max_res=ResourceVector(data["max_res"]),
            bit_per_resource=dict(data["bit_per_resource"]),
            rec_freq=data["rec_freq"],
            region_quantum=data.get("region_quantum"),
            reconfigurators=data.get("reconfigurators", 1),
            power=PowerModel.from_dict(power) if power is not None else None,
        )


# Frame-derived per-resource bit costs for Xilinx 7-series, following the
# Vipin & Fahmy accounting the paper cites for Eq. 1: a configuration frame
# is 101 words x 32 bit = 3232 bits; a CLB column spans 50 CLBs (100 slices)
# and 36 frames; a DSP column spans 20 DSP48 slices and 28 frames; a BRAM
# column spans 10 RAMB36 and 28 interconnect frames (block content excluded,
# as for region reconfiguration only the frame set matters).
_FRAME_BITS = 101 * 32
BITS_PER_CLB_SLICE = 36 * _FRAME_BITS / 100  # ~1163.5 bits per slice
BITS_PER_BRAM36 = 28 * _FRAME_BITS / 10  # ~9049.6 bits per RAMB36
BITS_PER_DSP48 = 28 * _FRAME_BITS / 20  # ~4524.8 bits per DSP48


def zedboard(processors: int = 2) -> Architecture:
    """The paper's target: ZedBoard, Zynq-7000 XC7Z020.

    Dual-core ARM Cortex-A9 plus an Artix-7 class fabric with 13300
    slices, 140 RAMB36 and 220 DSP48.  ICAP throughput is 32 bit @
    100 MHz = 3200 bits/us.
    """
    return Architecture(
        name="zedboard-xc7z020",
        processors=processors,
        max_res=ResourceVector({"CLB": 13300, "BRAM": 140, "DSP": 220}),
        bit_per_resource={
            "CLB": BITS_PER_CLB_SLICE,
            "BRAM": BITS_PER_BRAM36,
            "DSP": BITS_PER_DSP48,
        },
        rec_freq=3200.0,
        # 7-series placement granularity: one column x clock-region cell.
        region_quantum={"CLB": 100, "BRAM": 10, "DSP": 20},
    )
