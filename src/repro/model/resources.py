"""Resource vectors over the FPGA resource types.

The paper models the reconfigurable fabric as a set of resource types
``R`` (CLB, BRAM, DSP, ...) with per-type availability ``maxRes_r``.
Hardware implementations and reconfigurable regions are described by a
demand per resource type.  :class:`ResourceVector` is the shared
immutable representation of such demands, with the small algebra the
schedulers need (component-wise ``+``/``-``, containment, weighted
sums).
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from typing import Union

__all__ = ["ResourceVector", "ResourceKindError"]

Number = Union[int, float]


class ResourceKindError(KeyError):
    """Raised when an operation mixes unknown resource types."""


class ResourceVector(Mapping[str, int]):
    """An immutable, non-negative integer vector indexed by resource type.

    Missing types are implicitly zero, so vectors over different type
    subsets compose freely::

        >>> a = ResourceVector({"CLB": 100, "DSP": 2})
        >>> b = ResourceVector({"CLB": 50, "BRAM": 1})
        >>> (a + b)["CLB"]
        150
        >>> b.fits_in(a)
        False
    """

    __slots__ = ("_data",)

    def __init__(self, data: Mapping[str, Number] | None = None) -> None:
        clean: dict[str, int] = {}
        if data:
            for key, value in data.items():
                if not isinstance(key, str):
                    raise TypeError(f"resource type must be str, got {key!r}")
                quantity = int(value)
                if quantity != value:
                    raise ValueError(
                        f"resource quantity for {key!r} must be integral, got {value!r}"
                    )
                if quantity < 0:
                    raise ValueError(
                        f"resource quantity for {key!r} must be >= 0, got {value!r}"
                    )
                if quantity:
                    clean[key] = quantity
        self._data = clean

    # -- Mapping protocol -------------------------------------------------

    def __getitem__(self, key: str) -> int:
        return self._data.get(key, 0)

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: object) -> bool:
        return key in self._data

    # -- algebra -----------------------------------------------------------

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        if not isinstance(other, ResourceVector):
            return NotImplemented
        keys = set(self._data) | set(other._data)
        return ResourceVector({k: self[k] + other[k] for k in keys})

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        """Component-wise difference; raises if any component goes negative."""
        if not isinstance(other, ResourceVector):
            return NotImplemented
        keys = set(self._data) | set(other._data)
        out: dict[str, int] = {}
        for k in keys:
            diff = self[k] - other[k]
            if diff < 0:
                raise ValueError(
                    f"resource subtraction underflow on {k!r}: {self[k]} - {other[k]}"
                )
            out[k] = diff
        return ResourceVector(out)

    def scaled(self, factor: float) -> "ResourceVector":
        """Scale every component and floor to integers (used by the
        feasibility-loop virtual resource reduction, Section V-H)."""
        if factor < 0:
            raise ValueError("scale factor must be >= 0")
        return ResourceVector({k: int(v * factor) for k, v in self._data.items()})

    def maximum(self, other: "ResourceVector") -> "ResourceVector":
        """Component-wise maximum (region growth under merging policies)."""
        keys = set(self._data) | set(other._data)
        return ResourceVector({k: max(self[k], other[k]) for k in keys})

    def fits_in(self, capacity: "ResourceVector") -> bool:
        """True when every component is <= the capacity's component."""
        return all(v <= capacity[k] for k, v in self._data.items())

    def dominates(self, other: "ResourceVector") -> bool:
        """True when every component is >= the other's component."""
        return other.fits_in(self)

    def weighted_sum(self, weights: Mapping[str, float]) -> float:
        """``sum_r weights[r] * self[r]`` over this vector's own types.

        Types missing from *weights* raise :class:`ResourceKindError` —
        silently treating them as zero would hide mis-specified
        architectures (every fabric type must have a weight).
        """
        total = 0.0
        for key, value in self._data.items():
            if key not in weights:
                raise ResourceKindError(key)
            total += weights[key] * value
        return total

    def total(self) -> int:
        """Sum of all components (used in tie-breaking heuristics)."""
        return sum(self._data.values())

    def is_zero(self) -> bool:
        return not self._data

    # -- misc ----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ResourceVector):
            return self._data == other._data
        if isinstance(other, Mapping):
            return self._data == {k: v for k, v in other.items() if v}
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._data.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._data.items()))
        return f"ResourceVector({inner})"

    def to_dict(self) -> dict[str, int]:
        """Plain-dict snapshot for JSON serialization."""
        return dict(self._data)

    @classmethod
    def zero(cls) -> "ResourceVector":
        return cls()
