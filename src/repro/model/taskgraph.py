"""The application task graph — a DAG of :class:`~repro.model.task.Task`.

Section III: the application is a directed acyclic graph ``G = (T, E)``
where an arc ``(t1, t2)`` is a data dependency.  Communication overhead
is not modelled explicitly by the paper (it is folded into execution
times), but Section VIII lists it as future work; the graph therefore
carries an optional per-edge communication cost that the timing engine
can honour when the ``communication_overhead`` option is enabled.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

import networkx as nx

from .task import Task

__all__ = ["TaskGraph", "TaskGraphError"]


class TaskGraphError(ValueError):
    """Raised for structurally invalid task graphs."""


class TaskGraph:
    """A DAG of tasks with optional communication costs on edges.

    The class wraps :class:`networkx.DiGraph` rather than subclassing it
    so the public surface stays small and every mutation keeps the
    acyclicity invariant.
    """

    def __init__(self, name: str = "app") -> None:
        self.name = name
        self._graph = nx.DiGraph()

    # -- construction ------------------------------------------------------

    def add_task(self, task: Task) -> Task:
        if task.id in self._graph:
            raise TaskGraphError(f"duplicate task id {task.id!r}")
        self._graph.add_node(task.id, task=task)
        return task

    def add_dependency(self, src: str | Task, dst: str | Task, comm: float = 0.0) -> None:
        """Add the data dependency ``src -> dst``.

        ``comm`` is the optional communication cost charged between the
        end of ``src`` and the start of ``dst`` when the communication
        extension is enabled.
        """
        src_id = src.id if isinstance(src, Task) else src
        dst_id = dst.id if isinstance(dst, Task) else dst
        for tid in (src_id, dst_id):
            if tid not in self._graph:
                raise TaskGraphError(f"unknown task id {tid!r}")
        if src_id == dst_id:
            raise TaskGraphError(f"self-dependency on {src_id!r}")
        if comm < 0:
            raise TaskGraphError("communication cost must be >= 0")
        self._graph.add_edge(src_id, dst_id, comm=float(comm))
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(src_id, dst_id)
            raise TaskGraphError(
                f"dependency {src_id!r} -> {dst_id!r} would create a cycle"
            )

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def __contains__(self, task_id: str) -> bool:
        return task_id in self._graph

    def __iter__(self) -> Iterator[Task]:
        return (self._graph.nodes[n]["task"] for n in self._graph.nodes)

    @property
    def task_ids(self) -> list[str]:
        return list(self._graph.nodes)

    @property
    def tasks(self) -> list[Task]:
        return list(self)

    @property
    def edge_count(self) -> int:
        return self._graph.number_of_edges()

    def task(self, task_id: str) -> Task:
        try:
            return self._graph.nodes[task_id]["task"]
        except KeyError:
            raise TaskGraphError(f"unknown task id {task_id!r}") from None

    def edges(self) -> Iterator[tuple[str, str]]:
        return iter(self._graph.edges())

    def comm_cost(self, src: str, dst: str) -> float:
        return float(self._graph.edges[src, dst].get("comm", 0.0))

    def predecessors(self, task_id: str) -> list[str]:
        return list(self._graph.predecessors(task_id))

    def successors(self, task_id: str) -> list[str]:
        return list(self._graph.successors(task_id))

    def sources(self) -> list[str]:
        return [n for n in self._graph.nodes if self._graph.in_degree(n) == 0]

    def sinks(self) -> list[str]:
        return [n for n in self._graph.nodes if self._graph.out_degree(n) == 0]

    def topological_order(self) -> list[str]:
        """A deterministic topological order (lexicographic tie-break)."""
        return list(nx.lexicographical_topological_sort(self._graph))

    def descendants(self, task_id: str) -> set[str]:
        return nx.descendants(self._graph, task_id)

    def ancestors(self, task_id: str) -> set[str]:
        return nx.ancestors(self._graph, task_id)

    def as_networkx(self) -> nx.DiGraph:
        """A defensive copy of the underlying graph (for analysis code)."""
        return self._graph.copy()

    # -- structural metrics (used by benchgen / analysis) ---------------------

    def width(self) -> int:
        """Maximum antichain size — available task parallelism.

        Computed exactly via Dilworth's theorem (min chain cover on the
        transitive closure, solved as bipartite matching).
        """
        if len(self) == 0:
            return 0
        closure = nx.transitive_closure_dag(self._graph)
        matching = nx.bipartite.maximum_matching(
            _split_bipartite(closure), top_nodes={("u", n) for n in closure.nodes}
        )
        matched = sum(1 for k in matching if k[0] == "u")
        return len(self) - matched

    def depth(self) -> int:
        """Number of tasks on the longest chain."""
        if len(self) == 0:
            return 0
        return nx.dag_longest_path_length(self._graph) + 1

    # -- validation -----------------------------------------------------------

    def validate(self, require_sw: bool = True) -> None:
        """Check the Section III structural assumptions.

        ``require_sw`` enforces the paper's "at least one SW
        implementation per task" assumption.
        """
        if len(self) == 0:
            raise TaskGraphError("task graph is empty")
        if not nx.is_directed_acyclic_graph(self._graph):
            raise TaskGraphError("task graph has a cycle")
        if require_sw:
            for task in self:
                if not task.has_sw:
                    raise TaskGraphError(
                        f"task {task.id!r} has no SW implementation "
                        "(Section III assumes at least one)"
                    )

    # -- serialization ----------------------------------------------------------

    def to_dict(self) -> dict:
        # Tasks and edges are emitted in sorted order, not insertion
        # order, so two logically-equal graphs serialize to the same
        # bytes — the invariant the engine's content hashing relies on.
        return {
            "name": self.name,
            "tasks": [t.to_dict() for t in sorted(self, key=lambda t: t.id)],
            "edges": [
                {"src": u, "dst": v, "comm": self.comm_cost(u, v)}
                for u, v in sorted(self._graph.edges())
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "TaskGraph":
        graph = cls(name=data.get("name", "app"))
        for task_data in data["tasks"]:
            graph.add_task(Task.from_dict(task_data))
        for edge in data.get("edges", []):
            graph.add_dependency(edge["src"], edge["dst"], comm=edge.get("comm", 0.0))
        return graph

    @classmethod
    def from_edges(
        cls,
        tasks: Iterable[Task],
        edges: Iterable[tuple[str, str]],
        name: str = "app",
    ) -> "TaskGraph":
        graph = cls(name=name)
        for task in tasks:
            graph.add_task(task)
        for src, dst in edges:
            graph.add_dependency(src, dst)
        return graph

    def __repr__(self) -> str:
        return f"TaskGraph({self.name!r}, tasks={len(self)}, edges={self.edge_count})"


def _split_bipartite(closure: nx.DiGraph) -> nx.Graph:
    """Split-node bipartite graph for the Dilworth matching."""
    bipartite = nx.Graph()
    bipartite.add_nodes_from((("u", n) for n in closure.nodes), bipartite=0)
    bipartite.add_nodes_from((("v", n) for n in closure.nodes), bipartite=1)
    bipartite.add_edges_from((("u", a), ("v", b)) for a, b in closure.edges)
    return bipartite
