"""Problem model: architecture, tasks, task graphs, schedules (Section III)."""

from .architecture import Architecture, zedboard
from .canonical import canonical_dumps, content_hash, instance_hash
from .instance import Instance
from .resources import ResourceKindError, ResourceVector
from .schedule import (
    Placement,
    ProcessorPlacement,
    Reconfiguration,
    Region,
    RegionPlacement,
    Schedule,
    ScheduledTask,
)
from .task import Implementation, ImplKind, Task
from .taskgraph import TaskGraph, TaskGraphError

__all__ = [
    "Architecture",
    "zedboard",
    "canonical_dumps",
    "content_hash",
    "instance_hash",
    "Instance",
    "ResourceKindError",
    "ResourceVector",
    "Placement",
    "ProcessorPlacement",
    "Reconfiguration",
    "Region",
    "RegionPlacement",
    "Schedule",
    "ScheduledTask",
    "Implementation",
    "ImplKind",
    "Task",
    "TaskGraph",
    "TaskGraphError",
]
