"""Problem model: architecture, tasks, task graphs, schedules (Section III)."""

from .architecture import Architecture, zedboard
from .canonical import canonical_dumps, content_hash, instance_hash
from .fleet import Fleet, FleetDevice
from .instance import Instance
from .power import (
    EnergyBreakdown,
    PowerModel,
    energy_breakdown,
    zedboard_power,
    zero_power,
)
from .resources import ResourceKindError, ResourceVector
from .schedule import (
    Placement,
    ProcessorPlacement,
    Reconfiguration,
    Region,
    RegionPlacement,
    Schedule,
    ScheduledTask,
)
from .task import Implementation, ImplKind, Task
from .taskgraph import TaskGraph, TaskGraphError

__all__ = [
    "Architecture",
    "zedboard",
    "canonical_dumps",
    "content_hash",
    "instance_hash",
    "Fleet",
    "FleetDevice",
    "EnergyBreakdown",
    "PowerModel",
    "energy_breakdown",
    "zedboard_power",
    "zero_power",
    "Instance",
    "ResourceKindError",
    "ResourceVector",
    "Placement",
    "ProcessorPlacement",
    "Reconfiguration",
    "Region",
    "RegionPlacement",
    "Schedule",
    "ScheduledTask",
    "Implementation",
    "ImplKind",
    "Task",
    "TaskGraph",
    "TaskGraphError",
]
