"""Legacy setup shim: the sandboxed environment lacks the `wheel`
package (and network access), so `pip install -e .` cannot do a PEP 660
editable build; `python setup.py develop` (or `pip install -e .` on a
machine with wheel) both work."""
from setuptools import setup

setup()
